// Deterministic datagram-level fault injection.
//
// The reliability layer (transport/reliable.hpp) claims to survive a
// hostile network; this module is the hostile network.  A FaultInjector
// composes over a transport's egress path (UdpTransport::
// set_fault_injector): every outbound datagram is assigned a fate —
// pass, drop, duplicate, reorder, delay, or bit-corrupt — drawn from a
// seeded Rng, so the whole fault schedule is a pure function of
// (FaultConfig::seed, egress sequence): same seed, same fault trace,
// replayable from the command line (`bneck_check --compliance --faults
// "seed=7,drop=0.15,..."`).  Per-fault counters record what was done.
//
// Fates compose below the reliability sublayer, so dropped or mangled
// frames exercise the real repair machinery: retransmit timers repair
// drops and corruptions (decode rejects the mangled frame at the
// receiver), the dedup window suppresses duplicates, go-back-N
// reordering tolerance absorbs the delay/reorder queue.
//
// Reordering holds one frame back and emits it after the next egress
// datagram; delaying holds a frame in a deadline queue the owner
// flushes from its pump loop.  disarm() turns the injector into a
// pass-through and releases everything held — the compliance harness
// disarms before the Shutdown handshake so teardown is not part of the
// experiment.  When no injector is installed the transport pays one
// branch per datagram: the wrapper is zero-cost when disabled.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "base/time.hpp"
#include "transport/endpoint.hpp"

namespace bneck::transport {

struct FaultConfig {
  /// Fault-schedule seed; 0 lets the harness derive one (scenario seed).
  std::uint64_t seed = 0;
  // Per-datagram fault probabilities; independent draws, first match
  // in the order below wins.
  double drop = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  double corrupt = 0.0;
  double delay = 0.0;
  /// Held-frame release window for the delay fate.
  TimeNs delay_min = milliseconds(1);
  TimeNs delay_max = milliseconds(20);

  [[nodiscard]] bool any() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || corrupt > 0 ||
           delay > 0;
  }

  /// The standard lossy-network preset used by `--faults` without an
  /// argument: ~11% effective loss (drop + corrupt) plus duplication,
  /// reordering and delay — the 5–20% band the compliance-under-faults
  /// acceptance gate targets.
  [[nodiscard]] static FaultConfig standard(std::uint64_t seed);

  /// Parses "key=value,..." with keys seed, drop, dup, reorder,
  /// corrupt, delay, delay-min-ms, delay-max-ms.  Returns nullopt (and
  /// sets *error) on malformed input.
  [[nodiscard]] static std::optional<FaultConfig> parse(
      const std::string& spec, std::string* error);

  [[nodiscard]] std::string to_string() const;
};

struct FaultCounters {
  std::uint64_t datagrams = 0;  // egress datagrams seen
  std::uint64_t passed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t delayed = 0;

  friend bool operator==(const FaultCounters&, const FaultCounters&) = default;
};

class FaultInjector {
 public:
  /// Actually puts bytes on the wire (the socket send, post-injection).
  using Emit =
      std::function<void(const Endpoint&, std::span<const std::uint8_t>)>;

  explicit FaultInjector(const FaultConfig& cfg);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Decides the fate of one egress datagram, invoking `emit` zero, one
  /// or two times now and possibly holding bytes for a later flush().
  void process(TimeNs now, const Endpoint& to,
               std::span<const std::uint8_t> bytes, const Emit& emit);

  /// Releases held (delayed/reordered) frames due by `now`.
  void flush(TimeNs now, const Emit& emit);

  /// Earliest instant flush() has work, kTimeNever when nothing is held.
  [[nodiscard]] TimeNs next_due() const;

  /// Pass-through from now on; everything held is released on the next
  /// flush()/process() regardless of deadline.
  void disarm();
  [[nodiscard]] bool armed() const { return armed_; }

  [[nodiscard]] const FaultCounters& counters() const { return counters_; }
  [[nodiscard]] const FaultConfig& config() const { return cfg_; }

 private:
  struct Held {
    TimeNs due;
    Endpoint to;
    std::vector<std::uint8_t> bytes;
  };

  FaultConfig cfg_;
  Rng rng_;
  bool armed_ = true;
  std::deque<Held> held_;  // scanned on flush; held counts stay small
  Endpoint reorder_to_;
  std::vector<std::uint8_t> reorder_slot_;  // one frame held for a swap
  bool reorder_pending_ = false;
  std::vector<std::uint8_t> scratch_;
  FaultCounters counters_;
};

}  // namespace bneck::transport
