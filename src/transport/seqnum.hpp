// Serial-number arithmetic for ARQ sequence numbers (RFC 1982 style).
//
// Both reliability layers — the simulator-driven ArqChannel and the
// wall-clock ReliableChannel — number frames with unsigned 64-bit
// sequence numbers that are compared *modulo 2^64*: a - b interpreted
// as a signed distance.  At protocol rates a 64-bit counter never wraps
// in practice, but the state machines must not depend on that (the
// wraparound tests in tests/arq_test.cpp start channels a few frames
// below 2^64), and serial comparisons cost the same as plain ones.
#pragma once

#include <cstdint>

namespace bneck::transport {

/// a < b in serial-number order (true when a is at most 2^63-1 behind b).
[[nodiscard]] constexpr bool seq_lt(std::uint64_t a, std::uint64_t b) {
  return static_cast<std::int64_t>(a - b) < 0;
}

[[nodiscard]] constexpr bool seq_le(std::uint64_t a, std::uint64_t b) {
  return static_cast<std::int64_t>(a - b) <= 0;
}

/// Signed distance from b to a (a - b mod 2^64, as int64).
[[nodiscard]] constexpr std::int64_t seq_distance(std::uint64_t a,
                                                  std::uint64_t b) {
  return static_cast<std::int64_t>(a - b);
}

}  // namespace bneck::transport
