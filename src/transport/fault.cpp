#include "transport/fault.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "base/expect.hpp"

namespace bneck::transport {

FaultConfig FaultConfig::standard(std::uint64_t seed) {
  FaultConfig f;
  f.seed = seed;
  f.drop = 0.08;
  f.duplicate = 0.05;
  f.reorder = 0.05;
  f.corrupt = 0.03;
  f.delay = 0.05;
  return f;
}

std::optional<FaultConfig> FaultConfig::parse(const std::string& spec,
                                              std::string* error) {
  FaultConfig f;  // all-zero probabilities: only what the spec names
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string item =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      if (error) *error = "expected key=value, got '" + item + "'";
      return std::nullopt;
    }
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    char* end = nullptr;
    const double x = std::strtod(val.c_str(), &end);
    if (end == val.c_str() || *end != '\0') {
      if (error) *error = "bad value for '" + key + "'";
      return std::nullopt;
    }
    const bool is_prob = key == "drop" || key == "dup" || key == "reorder" ||
                         key == "corrupt" || key == "delay";
    if (is_prob && (x < 0.0 || x >= 1.0)) {
      if (error) *error = "probability '" + key + "' must be in [0,1)";
      return std::nullopt;
    }
    if (key == "seed") {
      f.seed = static_cast<std::uint64_t>(x);
    } else if (key == "drop") {
      f.drop = x;
    } else if (key == "dup") {
      f.duplicate = x;
    } else if (key == "reorder") {
      f.reorder = x;
    } else if (key == "corrupt") {
      f.corrupt = x;
    } else if (key == "delay") {
      f.delay = x;
    } else if (key == "delay-min-ms") {
      f.delay_min = milliseconds(static_cast<std::int64_t>(x));
    } else if (key == "delay-max-ms") {
      f.delay_max = milliseconds(static_cast<std::int64_t>(x));
    } else {
      if (error) *error = "unknown fault key '" + key + "'";
      return std::nullopt;
    }
  }
  if (f.delay_max < f.delay_min) {
    if (error) *error = "delay-max-ms below delay-min-ms";
    return std::nullopt;
  }
  if (f.drop + f.duplicate + f.reorder + f.corrupt + f.delay >= 1.0) {
    if (error) *error = "fault probabilities must sum below 1";
    return std::nullopt;
  }
  return f;
}

std::string FaultConfig::to_string() const {
  char buf[200];
  std::snprintf(buf, sizeof buf,
                "seed=%llu,drop=%g,dup=%g,reorder=%g,corrupt=%g,delay=%g,"
                "delay-min-ms=%lld,delay-max-ms=%lld",
                static_cast<unsigned long long>(seed), drop, duplicate,
                reorder, corrupt, delay,
                static_cast<long long>(delay_min / milliseconds(1)),
                static_cast<long long>(delay_max / milliseconds(1)));
  return buf;
}

FaultInjector::FaultInjector(const FaultConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed) {
  BNECK_EXPECT(cfg_.drop + cfg_.duplicate + cfg_.reorder + cfg_.corrupt +
                       cfg_.delay <
                   1.0,
               "fault probabilities must sum below 1");
  BNECK_EXPECT(cfg_.delay_min >= 0 && cfg_.delay_max >= cfg_.delay_min,
               "bad delay window");
}

void FaultInjector::process(TimeNs now, const Endpoint& to,
                            std::span<const std::uint8_t> bytes,
                            const Emit& emit) {
  if (!armed_) {
    flush(now, emit);
    emit(to, bytes);
    return;
  }
  ++counters_.datagrams;
  // One draw decides the fate (cumulative ranges), so the schedule is a
  // pure function of the seed and the egress index.
  const double u = rng_.uniform_real(0.0, 1.0);
  double edge = cfg_.drop;
  if (u < edge) {
    ++counters_.dropped;
    return;
  }
  if (u < (edge += cfg_.duplicate)) {
    ++counters_.duplicated;
    emit(to, bytes);
    emit(to, bytes);
    return;
  }
  if (u < (edge += cfg_.reorder)) {
    if (reorder_pending_) {
      // Two reorders back to back: swap with the frame already held.
      ++counters_.reordered;
      emit(to, bytes);
      emit(reorder_to_, reorder_slot_);
      reorder_pending_ = false;
      return;
    }
    ++counters_.reordered;
    reorder_to_ = to;
    reorder_slot_.assign(bytes.begin(), bytes.end());
    reorder_pending_ = true;
    return;
  }
  if (u < (edge += cfg_.corrupt)) {
    ++counters_.corrupted;
    scratch_.assign(bytes.begin(), bytes.end());
    if (!scratch_.empty()) {
      const std::int64_t flips = rng_.uniform_int(1, 3);
      for (std::int64_t i = 0; i < flips; ++i) {
        scratch_[static_cast<std::size_t>(rng_.uniform_int(
            0, static_cast<std::int64_t>(scratch_.size()) - 1))] ^=
            static_cast<std::uint8_t>(rng_.uniform_int(1, 255));
      }
    }
    emit(to, scratch_);
    return;
  }
  if (u < edge + cfg_.delay) {
    ++counters_.delayed;
    Held h;
    // delay_max >= delay_min is the constructor's validated invariant;
    // a zero-width window (delay_min == delay_max) is a fixed delay.
    h.due = now + rng_.uniform_int(cfg_.delay_min, cfg_.delay_max);
    h.to = to;
    h.bytes.assign(bytes.begin(), bytes.end());
    held_.push_back(std::move(h));
    return;
  }
  ++counters_.passed;
  emit(to, bytes);
  // A pass releases any pending reorder swap: the held frame goes out
  // after this one, which is the reordering.
  if (reorder_pending_) {
    emit(reorder_to_, reorder_slot_);
    reorder_pending_ = false;
  }
}

void FaultInjector::flush(TimeNs now, const Emit& emit) {
  if (!armed_ && reorder_pending_) {
    emit(reorder_to_, reorder_slot_);
    reorder_pending_ = false;
  }
  for (auto it = held_.begin(); it != held_.end();) {
    if (!armed_ || it->due <= now) {
      emit(it->to, it->bytes);
      it = held_.erase(it);
    } else {
      ++it;
    }
  }
}

TimeNs FaultInjector::next_due() const {
  TimeNs due = kTimeNever;
  if (!armed_ && (reorder_pending_ || !held_.empty())) return 0;
  for (const Held& h : held_) due = std::min(due, h.due);
  return due;
}

void FaultInjector::disarm() { armed_ = false; }

}  // namespace bneck::transport
