// The simulated-wire backend of the transport seam.
//
// SimTransport implements LinkTransport on the discrete-event
// simulator, reproducing the paper's timing model exactly: a packet
// handed to a directed link serializes behind earlier packets on that
// link (sim::FifoChannel), occupies it for the control-packet
// transmission time, propagates, and arrives as one allocation-free
// typed event.  With `reliable_links` every physical link runs through
// a go-back-N ArqChannel (transport/arq.hpp) instead — exactly-once
// in-order delivery over lossy wires; with bare loss_probability > 0,
// packets simply vanish (the paper's reliability assumption, violated
// on purpose).
//
// This is the reference backend: every figure bench, golden trace and
// fuzz campaign runs on it, and the refactor that introduced the seam
// is pinned byte-identical against the pre-seam event order
// (tests/transport_equiv_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "base/expect.hpp"
#include "base/rng.hpp"
#include "base/slab.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "transport/arq.hpp"
#include "transport/transport.hpp"

namespace bneck::transport {

/// Wire-level knobs, split out of core::BneckConfig (whose wire()
/// accessor builds one — the protocol-facing config stays the single
/// user-visible surface).
struct WireConfig {
  /// Control packet size in bits; determines per-hop transmission time.
  std::int64_t packet_bits = 512;
  /// When false, packets only incur propagation delay.
  bool model_transmission = true;
  /// Run every physical link through go-back-N ARQ.
  bool reliable_links = false;
  /// Probability that a wire transmission is lost.
  double loss_probability = 0.0;
  /// Seed for the loss process (deterministic fault injection).
  std::uint64_t loss_seed = 0x10552024;

  /// Transmission time of one control packet on `l` — THE definition of
  /// the simulation's store-and-forward timing, shared with external
  /// observers (src/check/ derives quiescence bounds from it).
  [[nodiscard]] TimeNs control_tx_time(const net::Link& l) const {
    if (!model_transmission) return 0;
    // bits / (capacity Mbps * 1e6 bit/s), expressed in nanoseconds.
    return static_cast<TimeNs>(static_cast<double>(packet_bits) * 1000.0 /
                                   l.capacity +
                               0.5);
  }
};

class SimTransport final
    : public LinkTransport,
      public sim::DeliveryHandlerOf<SimTransport, core::Packet> {
  friend sim::DeliveryHandlerOf<SimTransport, core::Packet>;

 public:
  SimTransport(sim::Simulator& sim, const net::Network& net,
               WireConfig cfg = {});

  SimTransport(const SimTransport&) = delete;
  SimTransport& operator=(const SimTransport&) = delete;

  void bind(TransportSink& sink) override;
  void send(LinkId physical, const core::Packet& p) override;
  void local(const core::Packet& p) override;
  [[nodiscard]] TimeNs now() const override { return sim_.now(); }
  [[nodiscard]] std::uint64_t retransmissions() const override;

  /// Busy horizons of every per-directed-link FIFO channel, in link-id
  /// order (model-checker snapshot seam).  Only meaningful on loss-free
  /// non-ARQ configurations, where the FIFO clocks are the transport's
  /// whole mutable state.
  [[nodiscard]] std::vector<TimeNs> channel_busy_snapshot() const {
    std::vector<TimeNs> busy;
    busy.reserve(channels_.size());
    for (const sim::FifoChannel& c : channels_) busy.push_back(c.busy_until());
    return busy;
  }
  void restore_channel_busy(const std::vector<TimeNs>& busy) {
    BNECK_EXPECT(busy.size() == channels_.size(),
                 "channel snapshot size mismatch");
    for (std::size_t i = 0; i < busy.size(); ++i) {
      channels_[i].restore_busy_until(busy[i]);
    }
  }

  /// True when this backend runs the paper's reliable loss-free wire —
  /// the only configuration the model checker can snapshot (ARQ channel
  /// state is not captured).
  [[nodiscard]] bool lossless() const {
    return !cfg_.reliable_links && cfg_.loss_probability == 0.0;
  }

 private:
  ArqChannel& arq_channel_at(LinkId physical);
  [[nodiscard]] TimeNs tx_time(const net::Link& l) const {
    return cfg_.control_tx_time(l);
  }
  void on_delivery(const core::Packet& p) { sink_->on_packet(p); }

  sim::Simulator& sim_;
  const net::Network& net_;
  WireConfig cfg_;
  TransportSink* sink_ = nullptr;

  std::vector<sim::FifoChannel> channels_;  // per directed link
  // ArqChannel objects live in a stable-address slab arena, constructed
  // lazily in first-use order; a per-directed-link slot vector maps
  // link id -> arena slot (-1 = never instantiated).
  Slab<ArqChannel> arq_arena_;
  std::vector<std::int32_t> arq_slot_;
  Rng loss_rng_;
};

}  // namespace bneck::transport
