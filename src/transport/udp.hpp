// The socket-backed side of the transport seam.
//
// UdpSocket is a thin RAII wrapper over a nonblocking IPv4/UDP socket
// (loopback-oriented: bneckd and its clients talk over 127.0.0.1, one
// wire frame per datagram).  UdpTransport implements LinkTransport on
// top of it: outbound packets are encoded through src/wire and sent to
// a peer — a fixed endpoint for a client (everything goes to the
// daemon) or a per-session endpoint resolved from the daemon's session
// registry — and inbound datagrams are decoded and dispatched by
// pump().
//
// Unlike SimTransport there is no virtual time and no loss model: the
// clock is CLOCK_MONOTONIC.  Reliability is explicit since PR 7:
// enable_reliability() routes outbound Packet frames through a per-peer
// transport::ReliableChannel (Data/Ack frames, retransmit timers,
// dedup), and set_fault_injector() interposes a deterministic lossy
// network on every egress datagram — including acks and control frames
// — so the repair machinery is exercised end to end.  Inbound Data
// frames are always handled (acked, deduplicated, delivered in order)
// whether or not outbound reliability is on, and bare Packet frames
// remain accepted for tests and hostile-ingress probing.  Decode
// failures are counted and dropped — a hostile or corrupted datagram
// must never take the process down.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/packet.hpp"
#include "transport/endpoint.hpp"
#include "transport/fault.hpp"
#include "transport/reliable.hpp"
#include "transport/transport.hpp"
#include "wire/codec.hpp"

namespace bneck::transport {

/// Nonblocking UDP socket, closed on destruction (the ASan CI cell
/// watches daemon shutdown for fd leaks).
class UdpSocket {
 public:
  /// Creates an unbound socket (a client: the kernel picks the local
  /// port on first send).
  UdpSocket();
  /// Binds to 127.0.0.1:`port`; port 0 asks the kernel for an ephemeral
  /// port (read it back with local_endpoint()).
  explicit UdpSocket(std::uint16_t port);
  ~UdpSocket();

  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] Endpoint local_endpoint() const;

  /// Sends one datagram, retrying EINTR.  Returns false when the kernel
  /// refused it (full buffer on a nonblocking socket, or an ICMP
  /// port-unreachable surfaced as ECONNREFUSED); callers treat that as
  /// wire loss, which the reliability sublayer repairs.
  bool send_to(const Endpoint& to, std::span<const std::uint8_t> bytes);

  /// Receives one datagram into `buf`, retrying EINTR and consuming
  /// queued ECONNREFUSED soft errors; returns its length, or -1 when
  /// nothing is queued.
  std::ptrdiff_t recv_from(std::span<std::uint8_t> buf, Endpoint& from);

  /// Blocks up to `timeout_ms` for readability.  EINTR restarts the
  /// wait against a CLOCK_MONOTONIC deadline, so a signal storm cannot
  /// stretch the timeout.
  bool wait_readable(int timeout_ms);

  /// Closes the descriptor early (idempotent).  A forked parent calls
  /// this on its copy so only the daemon child reads the socket.
  void close();

 private:
  int fd_ = -1;
};

/// LinkTransport over UDP datagrams.  The owner decides where frames
/// go (set_peer / set_peer_resolver), how Join frames learn their path
/// suffix (set_join_path_lookup), and what happens to inbound frames
/// (set_frame_handler); pump() drives the host-internal handoff queue,
/// the socket, the per-peer retransmit timers and the fault injector's
/// held-frame queue.
class UdpTransport final : public LinkTransport {
 public:
  using PeerResolver = std::function<const Endpoint*(const core::Packet&)>;
  using JoinPathLookup =
      std::function<std::span<const LinkId>(SessionId)>;
  /// Invoked for every decoded inbound frame with its source address.
  /// Reliable data arrives as kind Packet (exactly once, in order);
  /// Ack frames are consumed internally and never reach the handler.
  using FrameHandler =
      std::function<void(const wire::Frame&, const Endpoint& from)>;

  /// Reliability peer-table bound; a hostile address churn past this
  /// is counted (too_many_peers) and dropped, not allocated.
  static constexpr std::size_t kMaxPeers = 512;

  /// Binds 127.0.0.1:`port` (0 = ephemeral).
  explicit UdpTransport(std::uint16_t port = 0);

  [[nodiscard]] Endpoint local_endpoint() const {
    return socket_.local_endpoint();
  }
  [[nodiscard]] UdpSocket& socket() { return socket_; }

  /// Fixed-peer mode (client: every frame goes to the daemon).
  void set_peer(const Endpoint& peer) { peer_ = peer; }
  /// Per-packet peer mode (daemon: session registry lookup).  Returning
  /// nullptr drops the packet and counts it (unroutable).
  void set_peer_resolver(PeerResolver resolver) {
    peer_resolver_ = std::move(resolver);
  }
  void set_join_path_lookup(JoinPathLookup lookup) {
    join_path_ = std::move(lookup);
  }
  void set_frame_handler(FrameHandler handler) {
    frame_handler_ = std::move(handler);
  }

  /// Routes outbound Packet frames through per-peer ReliableChannels
  /// from now on.  Call before any traffic; per-peer jitter seeds are
  /// derived from cfg.seed and the peer address.
  void enable_reliability(const ReliableConfig& cfg);
  [[nodiscard]] bool reliable() const { return reliable_; }

  /// Interposes `injector` on every egress datagram (not owned; may be
  /// nullptr to remove).  Zero-cost when absent: one branch per send.
  void set_fault_injector(FaultInjector* injector) { fault_ = injector; }
  [[nodiscard]] FaultInjector* fault_injector() const { return fault_; }

  // -- LinkTransport --
  void bind(TransportSink& sink) override;
  void send(LinkId physical, const core::Packet& p) override;
  void local(const core::Packet& p) override;
  /// CLOCK_MONOTONIC nanoseconds.
  [[nodiscard]] TimeNs now() const override;
  [[nodiscard]] std::uint64_t retransmissions() const override;

  /// Encodes and sends a non-packet control frame (through the fault
  /// injector when one is installed).
  bool send_frame(const Endpoint& to, std::span<const std::uint8_t> bytes);

  /// Drains the local-handoff queue, then every queued datagram, then
  /// fires due retransmit timers and releases due held frames; when
  /// nothing was processed, waits up to `timeout_ms` (clamped to the
  /// earliest timer deadline) for the socket and drains again.  Returns
  /// the number of frames + handoffs processed.
  std::size_t pump(int timeout_ms);

  // -- reliability introspection --
  /// True once any peer channel exhausted its retries; the peer is
  /// unreachable and the owner should surface a terminal error.
  [[nodiscard]] bool peer_failed() const;
  [[nodiscard]] std::uint64_t duplicates_dropped() const;
  [[nodiscard]] std::size_t peer_count() const { return channels_.size(); }

  // -- counters (daemon status / tests) --
  [[nodiscard]] std::uint64_t datagrams_sent() const {
    return datagrams_sent_;
  }
  [[nodiscard]] std::uint64_t datagrams_received() const {
    return datagrams_received_;
  }
  [[nodiscard]] std::uint64_t decode_errors() const { return decode_errors_; }
  [[nodiscard]] std::uint64_t unroutable() const { return unroutable_; }
  [[nodiscard]] std::uint64_t acks_sent() const { return acks_sent_; }
  [[nodiscard]] std::uint64_t too_many_peers() const {
    return too_many_peers_;
  }
  [[nodiscard]] const char* last_decode_error() const {
    return last_decode_error_;
  }

 private:
  void drain_local();
  std::size_t drain_socket();
  std::size_t service_timers(TimeNs t);
  [[nodiscard]] TimeNs next_timer_deadline() const;
  /// Egress tail: fault injector (if armed), then the socket.
  void raw_send(const Endpoint& to, std::span<const std::uint8_t> bytes);
  /// Finds or creates the reliability channel for `ep`; nullptr when
  /// the peer table is full.
  ReliableChannel* channel_for(const Endpoint& ep);

  UdpSocket socket_;
  TransportSink* sink_ = nullptr;
  Endpoint peer_;
  PeerResolver peer_resolver_;
  JoinPathLookup join_path_;
  FrameHandler frame_handler_;

  bool reliable_ = false;
  ReliableConfig reliable_cfg_;
  std::unordered_map<Endpoint, ReliableChannel, EndpointHash> channels_;
  FaultInjector* fault_ = nullptr;

  std::deque<core::Packet> pending_;  // local() handoffs, FIFO
  std::vector<std::uint8_t> encode_buf_;
  std::vector<std::uint8_t> ack_buf_;

  std::uint64_t datagrams_sent_ = 0;
  std::uint64_t datagrams_received_ = 0;
  std::uint64_t decode_errors_ = 0;
  std::uint64_t unroutable_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t too_many_peers_ = 0;
  const char* last_decode_error_ = nullptr;
};

}  // namespace bneck::transport
