// The socket-backed side of the transport seam.
//
// UdpSocket is a thin RAII wrapper over a nonblocking IPv4/UDP socket
// (loopback-oriented: bneckd and its clients talk over 127.0.0.1, one
// wire frame per datagram).  UdpTransport implements LinkTransport on
// top of it: outbound packets are encoded through src/wire and sent to
// a peer — a fixed endpoint for a client (everything goes to the
// daemon) or a per-session endpoint resolved from the daemon's session
// registry — and inbound datagrams are decoded and dispatched by
// pump().
//
// Unlike SimTransport there is no virtual time and no loss model: the
// clock is CLOCK_MONOTONIC and reliability is whatever the kernel
// loopback path provides (clients re-probe on stall; see
// transport/client.hpp).  Decode failures are counted and dropped —
// a hostile or corrupted datagram must never take the process down.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/packet.hpp"
#include "transport/transport.hpp"
#include "wire/codec.hpp"

namespace bneck::transport {

/// An IPv4/UDP address in host byte order.
struct Endpoint {
  std::uint32_t addr = 0;
  std::uint16_t port = 0;

  [[nodiscard]] static Endpoint loopback(std::uint16_t port);
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

/// Nonblocking UDP socket, closed on destruction (the ASan CI cell
/// watches daemon shutdown for fd leaks).
class UdpSocket {
 public:
  /// Creates an unbound socket (a client: the kernel picks the local
  /// port on first send).
  UdpSocket();
  /// Binds to 127.0.0.1:`port`; port 0 asks the kernel for an ephemeral
  /// port (read it back with local_endpoint()).
  explicit UdpSocket(std::uint16_t port);
  ~UdpSocket();

  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] Endpoint local_endpoint() const;

  /// Sends one datagram.  Returns false when the kernel refused it
  /// (full buffer on a nonblocking socket); callers treat that as wire
  /// loss, which the protocol's re-probe path already tolerates.
  bool send_to(const Endpoint& to, std::span<const std::uint8_t> bytes);

  /// Receives one datagram into `buf`; returns its length, or -1 when
  /// nothing is queued.
  std::ptrdiff_t recv_from(std::span<std::uint8_t> buf, Endpoint& from);

  /// Blocks up to `timeout_ms` for readability (poll(2)).
  bool wait_readable(int timeout_ms);

  /// Closes the descriptor early (idempotent).  A forked parent calls
  /// this on its copy so only the daemon child reads the socket.
  void close();

 private:
  int fd_ = -1;
};

/// LinkTransport over UDP datagrams.  The owner decides where frames
/// go (set_peer / set_peer_resolver), how Join frames learn their path
/// suffix (set_join_path_lookup), and what happens to inbound frames
/// (set_frame_handler); pump() drives both the host-internal handoff
/// queue and the socket.
class UdpTransport final : public LinkTransport {
 public:
  using PeerResolver = std::function<const Endpoint*(const core::Packet&)>;
  using JoinPathLookup =
      std::function<std::span<const LinkId>(SessionId)>;
  /// Invoked for every decoded inbound frame with its source address.
  using FrameHandler =
      std::function<void(const wire::Frame&, const Endpoint& from)>;

  /// Binds 127.0.0.1:`port` (0 = ephemeral).
  explicit UdpTransport(std::uint16_t port = 0);

  [[nodiscard]] Endpoint local_endpoint() const {
    return socket_.local_endpoint();
  }
  [[nodiscard]] UdpSocket& socket() { return socket_; }

  /// Fixed-peer mode (client: every frame goes to the daemon).
  void set_peer(const Endpoint& peer) { peer_ = peer; }
  /// Per-packet peer mode (daemon: session registry lookup).  Returning
  /// nullptr drops the packet and counts it (unroutable).
  void set_peer_resolver(PeerResolver resolver) {
    peer_resolver_ = std::move(resolver);
  }
  void set_join_path_lookup(JoinPathLookup lookup) {
    join_path_ = std::move(lookup);
  }
  void set_frame_handler(FrameHandler handler) {
    frame_handler_ = std::move(handler);
  }

  // -- LinkTransport --
  void bind(TransportSink& sink) override;
  void send(LinkId physical, const core::Packet& p) override;
  void local(const core::Packet& p) override;
  /// CLOCK_MONOTONIC nanoseconds.
  [[nodiscard]] TimeNs now() const override;
  [[nodiscard]] std::uint64_t retransmissions() const override { return 0; }

  /// Encodes and sends a non-packet control frame.
  bool send_frame(const Endpoint& to, std::span<const std::uint8_t> bytes);

  /// Drains the local-handoff queue, then every queued datagram; when
  /// both are empty, waits up to `timeout_ms` for the socket and drains
  /// again.  Returns the number of frames + handoffs processed.
  std::size_t pump(int timeout_ms);

  // -- counters (daemon status / tests) --
  [[nodiscard]] std::uint64_t datagrams_sent() const {
    return datagrams_sent_;
  }
  [[nodiscard]] std::uint64_t datagrams_received() const {
    return datagrams_received_;
  }
  [[nodiscard]] std::uint64_t decode_errors() const { return decode_errors_; }
  [[nodiscard]] std::uint64_t unroutable() const { return unroutable_; }
  [[nodiscard]] const char* last_decode_error() const {
    return last_decode_error_;
  }

 private:
  void drain_local();
  std::size_t drain_socket();

  UdpSocket socket_;
  TransportSink* sink_ = nullptr;
  Endpoint peer_;
  PeerResolver peer_resolver_;
  JoinPathLookup join_path_;
  FrameHandler frame_handler_;

  std::deque<core::Packet> pending_;  // local() handoffs, FIFO
  std::vector<std::uint8_t> encode_buf_;

  std::uint64_t datagrams_sent_ = 0;
  std::uint64_t datagrams_received_ = 0;
  std::uint64_t decode_errors_ = 0;
  std::uint64_t unroutable_ = 0;
  const char* last_decode_error_ = nullptr;
};

}  // namespace bneck::transport
