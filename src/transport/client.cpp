#include "transport/client.hpp"

#include "base/expect.hpp"

namespace bneck::transport {

using core::Packet;
using core::PacketType;
using core::SourceNode;

SourceClient::SourceClient(const net::Network& net, Endpoint daemon,
                           const ClientOptions& opts)
    : net_(net), opts_(opts), transport_(0), daemon_(daemon) {
  transport_.bind(*this);
  transport_.set_peer(daemon_);
  transport_.enable_reliability(opts_.reliability);
  transport_.set_join_path_lookup(
      [this](SessionId s) -> std::span<const LinkId> {
        const auto it = sessions_.find(s);
        BNECK_EXPECT(it != sessions_.end(), "join for unknown session");
        return it->second.path.links;
      });
  transport_.set_frame_handler(
      [this](const wire::Frame& f, const Endpoint&) {
        if (f.kind == wire::FrameKind::Packet) {
          on_packet(f.packet);
        } else if (f.kind == wire::FrameKind::StatusReply) {
          last_status_ = f.status;
          ++status_replies_;
        }
      });
}

SourceClient::SessionRec& SourceClient::rec_of(SessionId s) {
  const auto it = sessions_.find(s);
  BNECK_EXPECT(it != sessions_.end(), "unknown session");
  return it->second;
}

void SourceClient::join(SessionId s, net::Path path, Rate demand,
                        double weight) {
  BNECK_EXPECT(s.valid(), "invalid session id");
  BNECK_EXPECT(!sessions_.contains(s),
               "session ids are single-use (no re-join)");
  BNECK_EXPECT(path.links.size() >= 2,
               "path needs access links at both ends");
  const net::Link& first = net_.link(path.links.front());
  BNECK_EXPECT(net_.is_host(first.src), "path must start at a host");
  for (const auto& [id, rec] : sessions_) {
    BNECK_EXPECT(!rec.live || rec.path.links.front() != path.links.front(),
                 "dedicated access: one live session per source host");
  }

  SessionRec rec;
  rec.slot = static_cast<std::int32_t>(sources_.size());
  rec.path = std::move(path);
  rec.demand = demand;
  rec.weight = weight;
  const LinkId eta0 = rec.path.links.front();
  const auto [it, inserted] = sessions_.emplace(s, std::move(rec));
  BNECK_EXPECT(inserted, "session registry corrupt");
  ++live_;
  SourceNode& src = sources_.emplace_back(
      s, eta0, first.capacity, /*emit_hop=*/0, *this,
      [this](SessionId id, Rate r) { rec_of(id).rate = r; }, weight);
  src.api_join(demand);
}

void SourceClient::change(SessionId s, Rate demand) {
  SessionRec& rec = rec_of(s);
  BNECK_EXPECT(rec.live, "change after leave");
  rec.demand = demand;
  sources_[static_cast<std::size_t>(rec.slot)].api_change(demand);
}

void SourceClient::change(SessionId s, Rate demand, double weight) {
  SessionRec& rec = rec_of(s);
  BNECK_EXPECT(rec.live, "change after leave");
  rec.demand = demand;
  rec.weight = weight;
  sources_[static_cast<std::size_t>(rec.slot)].api_change(demand, weight);
}

void SourceClient::leave(SessionId s) {
  SessionRec& rec = rec_of(s);
  BNECK_EXPECT(rec.live, "double leave");
  sources_[static_cast<std::size_t>(rec.slot)].api_leave();
  rec.live = false;
  --live_;
}

void SourceClient::tick() {
  if (opts_.heartbeat_period <= 0) return;
  const TimeNs t = transport_.now();
  if (t < next_heartbeat_) return;
  next_heartbeat_ = t + opts_.heartbeat_period;
  std::vector<std::uint8_t> buf;
  wire::encode_heartbeat(live_, buf);
  transport_.send_frame(daemon_, buf);
}

std::size_t SourceClient::poll(int timeout_ms) {
  tick();
  return transport_.pump(timeout_ms);
}

std::optional<wire::StatusReply> SourceClient::query_status(int timeout_ms) {
  std::vector<std::uint8_t> buf;
  wire::encode_status_request(buf);
  if (!transport_.send_frame(daemon_, buf)) return std::nullopt;
  const std::uint64_t before = status_replies_;
  // Budgeted wait: each pump blocks at most 1 ms, so packet traffic
  // keeps flowing while we wait for the reply.  A StatusRequest can be
  // eaten by the (unreliable, possibly faulted) control path, so re-ask
  // periodically instead of waiting the whole budget on one datagram.
  for (int waited = 0; waited <= timeout_ms; ++waited) {
    tick();
    transport_.pump(1);
    if (status_replies_ > before) return last_status_;
    if (failed()) return std::nullopt;
    if (waited > 0 && waited % 50 == 0) transport_.send_frame(daemon_, buf);
  }
  return std::nullopt;
}

std::string SourceClient::failure() const {
  if (!failed()) return "";
  return "daemon " + daemon_.to_string() +
         " unreachable: retransmission budget exhausted with no "
         "acknowledgement";
}

void SourceClient::nudge() {
  for (const auto& [id, rec] : sessions_) {
    if (!rec.live) continue;
    sources_[static_cast<std::size_t>(rec.slot)].api_change(rec.demand,
                                                            rec.weight);
  }
}

bool SourceClient::shutdown_daemon() {
  std::vector<std::uint8_t> buf;
  wire::encode_shutdown(buf);
  return transport_.send_frame(daemon_, buf);
}

bool SourceClient::sources_stable() const {
  for (const auto& [id, rec] : sessions_) {
    if (!rec.live) continue;
    const SourceNode& src = sources_[static_cast<std::size_t>(rec.slot)];
    if (!src.stable() || !src.bottleneck_received()) return false;
  }
  return true;
}

Rate SourceClient::rate_of(SessionId s) const {
  const auto it = sessions_.find(s);
  BNECK_EXPECT(it != sessions_.end(), "unknown session");
  return it->second.rate;
}

void SourceClient::send_downstream(Packet p, std::int32_t from_hop) {
  BNECK_EXPECT(from_hop == 0, "source emits at hop 0");
  BNECK_EXPECT(core::is_downstream(p.type), "upstream packet sent downstream");
  const SessionRec& rec = rec_of(p.session);
  p.hop = 1;
  transport_.send(rec.path.links.front(), p);
}

void SourceClient::send_upstream(Packet, std::int32_t) {
  BNECK_EXPECT(false, "source tasks never send upstream");
}

void SourceClient::on_packet(const Packet& p) {
  ++packets_received_;
  const auto it = sessions_.find(p.session);
  if (it == sessions_.end() || !it->second.live || p.hop != 0) {
    ++stray_packets_;  // late traffic for a departed session, or noise
    return;
  }
  SourceNode& src = sources_[static_cast<std::size_t>(it->second.slot)];
  switch (p.type) {
    case PacketType::Response: src.on_response(p); return;
    case PacketType::Update: src.on_update(p); return;
    case PacketType::Bottleneck: src.on_bottleneck(p); return;
    default:
      ++stray_packets_;  // downstream type at the source: drop
      return;
  }
}

}  // namespace bneck::transport
