// bneckd: the B-Neck router plane as a real process.
//
// A Daemon hosts every RouterLink task of one network (hops 1..len-1 of
// each session path) plus the paper's stateless destination echo
// (Figure 4), and talks the src/wire format over UDP with source-node
// clients (transport/client.hpp), which run the paper's Figure-3 source
// tasks.  The hop contract is exactly the simulator's dedicated-access
// mode: hop 0 is the source (on the far side of the socket), hop k in
// [1, len) is the RouterLink at path.links[k], hop == len is the
// destination echo.  Hops that stay inside the daemon ride the
// transport's local-handoff queue (FIFO, like the simulator's
// zero-delay events); hops that cross to a source are encoded and sent
// to the client endpoint recorded at Join time.
//
// Session paths arrive on the wire: the Join frame carries the full
// link path (a deliberate divergence from the paper's abstract
// messages; docs/wire_format.md).  The daemon validates it against its
// own topology before admitting the session.
//
// Nothing in the ingress path aborts: decode failures are dropped by
// UdpTransport, semantic violations (unknown session, bad hop, path
// mismatch, upstream types from a peer) are rejected and counted, and
// any InvariantError escaping the protocol handlers is caught and
// counted — a hostile peer can be ignored, never crash the daemon.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/slab.hpp"
#include "core/router_link.hpp"
#include "net/routing.hpp"
#include "transport/udp.hpp"

namespace bneck::transport {

struct DaemonStats {
  std::uint64_t frames_accepted = 0;  // wire frames admitted to the plane
  std::uint64_t frames_rejected = 0;  // semantic ingress rejections
  std::uint64_t invariant_trips = 0;  // InvariantError caught in handlers
  std::uint64_t status_requests = 0;
};

class Daemon final : public core::Transport, public TransportSink {
 public:
  /// Serves `net`'s router plane on 127.0.0.1:`port` (0 = ephemeral).
  /// The network must outlive the daemon.
  explicit Daemon(const net::Network& net, std::uint16_t port = 0);

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  [[nodiscard]] Endpoint endpoint() const {
    return transport_.local_endpoint();
  }

  /// Blocks until a Shutdown frame arrives (or request_stop()).
  void serve();
  /// One poll-and-drain iteration; returns false once stopped.
  bool step(int timeout_ms);
  void request_stop() { running_ = false; }

  /// Every instantiated RouterLink task is stable (no probe cycle in
  /// flight inside the router plane).
  [[nodiscard]] bool stable() const;
  [[nodiscard]] std::uint32_t active_sessions() const { return live_; }
  [[nodiscard]] const DaemonStats& stats() const { return stats_; }
  [[nodiscard]] UdpTransport& transport() { return transport_; }
  [[nodiscard]] const std::string& last_reject() const { return last_reject_; }

  // -- core::Transport (RouterLink emissions) --
  void send_downstream(core::Packet p, std::int32_t from_hop) override;
  void send_upstream(core::Packet p, std::int32_t from_hop) override;

  // -- TransportSink --
  void on_wire(const core::Packet&, LinkId) override {}
  void on_packet(const core::Packet& p) override;  // local-handoff drain

 private:
  struct SessionRec {
    net::Path path;
    Endpoint client;
    bool live = true;
  };

  void on_frame(const wire::Frame& f, const Endpoint& from);
  /// Validates and admits one peer packet; returns nullptr on success,
  /// else the rejection reason.
  const char* ingress(const wire::Frame& f, const Endpoint& from);
  const char* validate_join_path(const std::vector<LinkId>& path) const;
  void deliver(const core::Packet& p);
  core::RouterLink& router_link_at(LinkId e);

  const net::Network& net_;
  UdpTransport transport_;

  Slab<core::RouterLink> link_arena_;
  std::vector<std::int32_t> link_slot_;  // link id -> arena slot, -1 unused

  // Session registry, learned from Join frames.  Records are tombstoned
  // on Leave, never erased: late packets for a departed session are
  // dropped silently, and session ids stay single-use (core contract).
  std::unordered_map<SessionId, SessionRec> sessions_;
  std::uint32_t live_ = 0;

  // Atomic so an in-process controller thread can stop the serve loop
  // (the compliance harness's threaded mode).
  std::atomic<bool> running_{true};
  DaemonStats stats_;
  std::string last_reject_;
};

}  // namespace bneck::transport
