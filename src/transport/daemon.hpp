// bneckd: the B-Neck router plane as a real process.
//
// A Daemon hosts every RouterLink task of one network (hops 1..len-1 of
// each session path) plus the paper's stateless destination echo
// (Figure 4), and talks the src/wire format over UDP with source-node
// clients (transport/client.hpp), which run the paper's Figure-3 source
// tasks.  The hop contract is exactly the simulator's dedicated-access
// mode: hop 0 is the source (on the far side of the socket), hop k in
// [1, len) is the RouterLink at path.links[k], hop == len is the
// destination echo.  Hops that stay inside the daemon ride the
// transport's local-handoff queue (FIFO, like the simulator's
// zero-delay events); hops that cross to a source are encoded and sent
// to the client endpoint recorded at Join time.
//
// Session paths arrive on the wire: the Join frame carries the full
// link path (a deliberate divergence from the paper's abstract
// messages; docs/wire_format.md).  The daemon validates it against its
// own topology before admitting the session.
//
// Nothing in the ingress path aborts: decode failures are dropped by
// UdpTransport, semantic violations (unknown session, bad hop, path
// mismatch, upstream types from a peer) are rejected and counted per
// wire::RejectReason, and any InvariantError escaping the protocol
// handlers is caught and counted — a hostile peer can be ignored,
// never crash the daemon.  The reject breakdown crosses the wire in
// StatusReply and can be logged periodically (DaemonOptions::
// summary_period).
//
// Since PR 7 the daemon speaks the reliability sublayer (frames ride
// reliable Data/Ack channels; see transport/reliable.hpp) and tracks
// client liveness: every frame from a client endpoint — heartbeats
// included — refreshes it, and a client silent past DaemonOptions::
// session_expiry has its live sessions reaped by a synthesized Leave,
// so a crashed source cannot pin capacity forever.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/slab.hpp"
#include "core/router_link.hpp"
#include "net/routing.hpp"
#include "transport/fault.hpp"
#include "transport/udp.hpp"

namespace bneck::transport {

struct DaemonOptions {
  std::uint16_t port = 0;  // 0 = ephemeral
  /// Retransmit tuning for the reliable channels to clients.
  ReliableConfig reliability;
  /// Egress fault injection (compliance-under-faults); disabled when
  /// absent or all-zero.
  std::optional<FaultConfig> faults;
  /// Reap the sessions of a client silent this long; 0 disables expiry.
  TimeNs session_expiry = 0;
  /// Emit a one-line counter summary to stderr this often; 0 disables.
  TimeNs summary_period = 0;
};

struct DaemonStats {
  std::uint64_t frames_accepted = 0;  // wire frames admitted to the plane
  std::uint64_t frames_rejected = 0;  // semantic ingress rejections (sum)
  std::uint64_t invariant_trips = 0;  // InvariantError caught in handlers
  std::uint64_t status_requests = 0;
  std::uint64_t heartbeats = 0;
  std::uint32_t expired_sessions = 0;  // reaped by liveness expiry
  /// Ingress drops by reason (daemon-side; the wire snapshot merges in
  /// transport-level drops too — see Daemon::status_reply()).
  std::array<std::uint32_t, wire::kRejectReasonCount> rejects{};
};

class Daemon final : public core::Transport, public TransportSink {
 public:
  /// Serves `net`'s router plane on 127.0.0.1:`opts.port`.  The network
  /// must outlive the daemon.
  Daemon(const net::Network& net, const DaemonOptions& opts);
  explicit Daemon(const net::Network& net, std::uint16_t port = 0)
      : Daemon(net, with_port(port)) {}

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  [[nodiscard]] Endpoint endpoint() const {
    return transport_.local_endpoint();
  }

  /// Blocks until a Shutdown frame arrives (or request_stop()).
  void serve();
  /// One poll-and-drain iteration (plus liveness sweep and summary
  /// logging); returns false once stopped.
  bool step(int timeout_ms);
  void request_stop() { running_ = false; }

  /// Every instantiated RouterLink task is stable (no probe cycle in
  /// flight inside the router plane).
  [[nodiscard]] bool stable() const;
  [[nodiscard]] std::uint32_t active_sessions() const { return live_; }
  [[nodiscard]] const DaemonStats& stats() const { return stats_; }
  [[nodiscard]] UdpTransport& transport() { return transport_; }
  [[nodiscard]] const std::string& last_reject() const { return last_reject_; }
  /// The convergence/counters snapshot a StatusRequest is answered
  /// with: daemon-side rejects merged with transport-level drops.
  [[nodiscard]] wire::StatusReply status_reply() const;

  // -- core::Transport (RouterLink emissions) --
  void send_downstream(core::Packet p, std::int32_t from_hop) override;
  void send_upstream(core::Packet p, std::int32_t from_hop) override;

  // -- TransportSink --
  void on_wire(const core::Packet&, LinkId) override {}
  void on_packet(const core::Packet& p) override;  // local-handoff drain

 private:
  struct SessionRec {
    net::Path path;
    Endpoint client;
    bool live = true;
  };
  struct Reject {
    wire::RejectReason reason;
    const char* what;
  };

  [[nodiscard]] static DaemonOptions with_port(std::uint16_t port) {
    DaemonOptions o;
    o.port = port;
    return o;
  }

  void on_frame(const wire::Frame& f, const Endpoint& from);
  /// Validates and admits one peer packet; returns nullopt on success.
  std::optional<Reject> ingress(const wire::Frame& f, const Endpoint& from);
  const char* validate_join_path(const std::vector<LinkId>& path) const;
  void count_reject(const Reject& r);
  void deliver(const core::Packet& p);
  core::RouterLink& router_link_at(LinkId e);
  /// Reaps the sessions of clients silent past session_expiry.
  void sweep_liveness(TimeNs t);
  void maybe_summary(TimeNs t);

  const net::Network& net_;
  DaemonOptions opts_;
  std::optional<FaultInjector> fault_;
  UdpTransport transport_;

  Slab<core::RouterLink> link_arena_;
  std::vector<std::int32_t> link_slot_;  // link id -> arena slot, -1 unused

  // Session registry, learned from Join frames.  Records are tombstoned
  // on Leave, never erased: late packets for a departed session are
  // dropped silently, and session ids stay single-use (core contract).
  std::unordered_map<SessionId, SessionRec> sessions_;
  std::uint32_t live_ = 0;

  // Client liveness: last frame (of any kind) seen per endpoint.
  std::unordered_map<Endpoint, TimeNs, EndpointHash> last_seen_;
  TimeNs next_sweep_ = 0;
  TimeNs next_summary_ = 0;

  // Atomic so an in-process controller thread can stop the serve loop
  // (the compliance harness's threaded mode).
  std::atomic<bool> running_{true};
  DaemonStats stats_;
  std::string last_reject_;
};

}  // namespace bneck::transport
