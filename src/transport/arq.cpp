#include "transport/arq.hpp"

#include <algorithm>

#include "transport/seqnum.hpp"

namespace bneck::transport {

ArqChannel::ArqChannel(sim::Simulator& sim, sim::FifoChannel& data_channel,
                       sim::FifoChannel& ack_channel, TimeNs data_tx,
                       TimeNs data_prop, TimeNs ack_tx, TimeNs ack_prop,
                       ArqConfig config, Rng rng, DeliverFn deliver,
                       WireFn on_wire)
    : sim_(sim),
      data_channel_(data_channel),
      ack_channel_(ack_channel),
      data_tx_(data_tx),
      data_prop_(data_prop),
      ack_tx_(ack_tx),
      ack_prop_(ack_prop),
      cfg_(config),
      rng_(rng),
      deliver_(std::move(deliver)),
      on_wire_(std::move(on_wire)) {
  data_rx_.self = this;
  ack_rx_.self = this;
  BNECK_EXPECT(cfg_.window >= 1, "ARQ window must be positive");
  BNECK_EXPECT(cfg_.loss_probability >= 0.0 && cfg_.loss_probability < 1.0,
               "loss probability must be in [0,1)");
  BNECK_EXPECT(cfg_.backoff >= 1.0, "backoff must be >= 1");
  if (cfg_.timeout == 0) {
    // 4x the round trip (data out, ack back) plus a floor so zero-delay
    // test links still get a sane timer.
    cfg_.timeout = std::max<TimeNs>(
        4 * (data_tx_ + data_prop_ + ack_tx_ + ack_prop_), microseconds(10));
  }
  rto_ = cfg_.timeout;
  next_seq_ = cfg_.first_seq;
  send_base_ = cfg_.first_seq;
  expected_ = cfg_.first_seq;
}

void ArqChannel::send(Packet p) {
  window_.push_back(InFlight{next_seq_++, p, false});
  // Transmit immediately if inside the sender window.
  if (seq_lt(window_.back().seq,
             send_base_ + static_cast<std::uint64_t>(cfg_.window))) {
    wire_send_data(window_.back());
  }
  arm_timer();
}

void ArqChannel::wire_send_data(InFlight& entry) {
  ++data_sends_;
  if (entry.on_wire) ++retx_;
  entry.on_wire = true;
  if (on_wire_) on_wire_(entry.packet);
  const TimeNs arrival =
      data_channel_.transmit(sim_.now(), data_tx_, data_prop_);
  if (rng_.chance(cfg_.loss_probability)) {
    ++losses_;  // occupied the wire, never arrives
    return;
  }
  sim_.schedule_delivery_at(arrival, data_rx_,
                            DataFrame{entry.packet, entry.seq});
}

void ArqChannel::on_data(std::uint64_t seq, const Packet& p) {
  if (seq == expected_) {
    ++expected_;
    deliver_(p);
  }
  // Go-back-N: out-of-order data is dropped; every arrival triggers a
  // cumulative ack (which also repairs lost acks).
  send_ack();
}

void ArqChannel::send_ack() {
  ++acks_sent_;
  const TimeNs arrival = ack_channel_.transmit(sim_.now(), ack_tx_, ack_prop_);
  if (rng_.chance(cfg_.loss_probability)) {
    ++losses_;
    return;
  }
  sim_.schedule_delivery_at(arrival, ack_rx_, AckFrame{expected_});
}

void ArqChannel::on_ack(std::uint64_t cumulative) {
  if (seq_le(cumulative, send_base_)) return;  // stale
  while (!window_.empty() && seq_lt(window_.front().seq, cumulative)) {
    window_.pop_front();
  }
  send_base_ = cumulative;
  rto_ = cfg_.timeout;  // ack progress resets the backoff
  // Window slid forward: transmit newly admitted packets.
  for (auto& entry : window_) {
    if (!seq_lt(entry.seq,
                send_base_ + static_cast<std::uint64_t>(cfg_.window))) {
      break;
    }
    if (!entry.on_wire) wire_send_data(entry);
  }
  if (window_.empty()) {
    ++timer_generation_;  // logically cancel the timer
    timer_armed_ = false;
  } else {
    ++timer_generation_;
    timer_armed_ = false;
    arm_timer();
  }
}

void ArqChannel::arm_timer() {
  if (timer_armed_ || window_.empty()) return;
  timer_armed_ = true;
  const std::uint64_t generation = timer_generation_;
  sim_.schedule_in(rto_, [this, generation] { on_timeout(generation); });
}

void ArqChannel::on_timeout(std::uint64_t generation) {
  if (generation != timer_generation_ || window_.empty()) return;
  // Retransmit everything inside the window.
  timer_armed_ = false;
  ++timer_generation_;
  for (auto& entry : window_) {
    if (!seq_lt(entry.seq,
                send_base_ + static_cast<std::uint64_t>(cfg_.window))) {
      break;
    }
    wire_send_data(entry);
  }
  if (cfg_.backoff > 1.0) {
    rto_ = static_cast<TimeNs>(static_cast<double>(rto_) * cfg_.backoff);
    if (cfg_.max_timeout > 0) rto_ = std::min(rto_, cfg_.max_timeout);
  }
  arm_timer();
}

}  // namespace bneck::transport
