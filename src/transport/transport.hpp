// The transport seam: how the protocol binding crosses a wire.
//
// Above this interface sits the control plane — core::BneckProtocol and
// its tasks (RouterLink, SourceNode), which decide *what* to send and
// to which hop.  Below it sits a backend that decides *how* a packet
// crosses the physical directed link: the discrete-event simulator
// (transport::SimTransport, the reference backend every figure bench
// and golden trace runs on) or real nonblocking UDP sockets
// (transport::UdpTransport, the backend behind the `bneckd` daemon).
// The binding never touches sim::Simulator or a socket directly; it
// talks to a LinkTransport and receives packets back through its
// TransportSink.
//
// Contract:
//   * send(physical, p) hands p — with p.hop already set to the
//     receiving hop — to the wire of directed link `physical`.
//     Delivery is asynchronous: the backend invokes sink.on_wire once
//     per actual wire crossing (so ARQ retransmissions count) and
//     sink.on_packet when the packet arrives at the far end.
//   * local(p) is a host-internal handoff (shared-access mode): no
//     wire, no delay, but still asynchronous — delivered after the
//     current handler returns, preserving run-to-completion semantics.
//   * now() is the backend's clock: simulated time for SimTransport,
//     monotonic wall-clock nanoseconds for UdpTransport.  All protocol
//     timestamps (traces, API.Rate callbacks) come from here.
#pragma once

#include <cstdint>

#include "base/ids.hpp"
#include "base/time.hpp"
#include "core/packet.hpp"

namespace bneck::transport {

/// Receives packets back from a LinkTransport.
class TransportSink {
 public:
  virtual ~TransportSink() = default;

  /// `p` was handed to the wire of directed link `physical` — once per
  /// physical transmission (ARQ retransmissions included).
  virtual void on_wire(const core::Packet& p, LinkId physical) = 0;

  /// `p` arrived at the far end of its link (or completed a local
  /// handoff); p.hop addresses the receiving task.
  virtual void on_packet(const core::Packet& p) = 0;
};

/// A wire backend.  Implementations: SimTransport (sim_transport.hpp),
/// UdpTransport (udp.hpp).
class LinkTransport {
 public:
  virtual ~LinkTransport() = default;

  /// Must be called exactly once, before the first send; the sink must
  /// outlive the transport.  (The binding constructs the transport
  /// before itself, so the sink cannot be a constructor argument.)
  virtual void bind(TransportSink& sink) = 0;

  /// Hands `p` (hop already set) to directed link `physical`.
  virtual void send(LinkId physical, const core::Packet& p) = 0;

  /// Host-internal handoff: delivered to the sink at the current
  /// instant, after the running handler returns.
  virtual void local(const core::Packet& p) = 0;

  /// The backend's clock, in nanoseconds.
  [[nodiscard]] virtual TimeNs now() const = 0;

  /// Link-layer retransmissions performed (ARQ backends only).
  [[nodiscard]] virtual std::uint64_t retransmissions() const { return 0; }
};

}  // namespace bneck::transport
