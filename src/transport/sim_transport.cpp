#include "transport/sim_transport.hpp"

#include "base/expect.hpp"

namespace bneck::transport {

SimTransport::SimTransport(sim::Simulator& sim, const net::Network& net,
                           WireConfig cfg)
    : sim_(sim),
      net_(net),
      cfg_(cfg),
      channels_(static_cast<std::size_t>(net.link_count())),
      arq_slot_(static_cast<std::size_t>(net.link_count()), -1),
      loss_rng_(cfg.loss_seed) {
  BNECK_EXPECT(cfg_.packet_bits > 0, "packet size must be positive");
  BNECK_EXPECT(cfg_.loss_probability >= 0.0 && cfg_.loss_probability < 1.0,
               "loss probability must be in [0,1)");
}

void SimTransport::bind(TransportSink& sink) {
  BNECK_EXPECT(sink_ == nullptr, "transport already bound");
  sink_ = &sink;
}

ArqChannel& SimTransport::arq_channel_at(LinkId physical) {
  std::int32_t& slot = arq_slot_[static_cast<std::size_t>(physical.value())];
  if (slot < 0) {
    const net::Link& l = net_.link(physical);
    const net::Link& rev = net_.link(l.reverse);
    ArqConfig acfg;
    acfg.loss_probability = cfg_.loss_probability;
    slot = static_cast<std::int32_t>(arq_arena_.size());
    TransportSink* sink = sink_;
    arq_arena_.emplace_back(
        sim_, channels_[static_cast<std::size_t>(physical.value())],
        channels_[static_cast<std::size_t>(l.reverse.value())], tx_time(l),
        l.prop_delay, tx_time(rev), rev.prop_delay, acfg, loss_rng_.fork(),
        [sink](const Packet& p) { sink->on_packet(p); },
        [sink, physical](const Packet& p) { sink->on_wire(p, physical); });
  }
  return arq_arena_[static_cast<std::size_t>(slot)];
}

std::uint64_t SimTransport::retransmissions() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < arq_arena_.size(); ++i) {
    total += arq_arena_[i].retransmissions();
  }
  return total;
}

void SimTransport::send(LinkId physical, const core::Packet& p) {
  BNECK_EXPECT(sink_ != nullptr, "transport not bound");
  if (cfg_.reliable_links) {
    arq_channel_at(physical).send(p);
    return;
  }
  const net::Link& l = net_.link(physical);
  const TimeNs arrival = channels_[static_cast<std::size_t>(physical.value())]
                             .transmit(sim_.now(), tx_time(l), l.prop_delay);
  sink_->on_wire(p, physical);
  if (cfg_.loss_probability > 0 && loss_rng_.chance(cfg_.loss_probability)) {
    return;  // the paper's reliability assumption, violated on purpose
  }
  sim_.schedule_delivery_at(arrival, *this, p);
}

void SimTransport::local(const core::Packet& p) {
  BNECK_EXPECT(sink_ != nullptr, "transport not bound");
  sim_.schedule_delivery_in(0, *this, p);
}

}  // namespace bneck::transport
