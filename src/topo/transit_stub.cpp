#include "topo/transit_stub.hpp"

#include <vector>

namespace bneck::topo {

TransitStubParams small_params() {
  TransitStubParams p;
  p.transit_domains = 1;
  p.routers_per_transit = 10;
  p.stubs_per_transit_router = 1;
  p.routers_per_stub = 10;
  return p;  // 10 + 10*1*10 = 110 routers
}

TransitStubParams medium_params() {
  TransitStubParams p;
  p.transit_domains = 10;
  p.routers_per_transit = 10;
  p.stubs_per_transit_router = 1;
  p.routers_per_stub = 10;
  return p;  // 100 + 100*1*10 = 1100 routers
}

TransitStubParams big_params() {
  TransitStubParams p;
  p.transit_domains = 10;
  p.routers_per_transit = 100;
  p.stubs_per_transit_router = 1;
  p.routers_per_stub = 10;
  return p;  // 1000 + 1000*1*10 = 11000 routers
}

TransitStubParams params_by_name(const std::string& name) {
  if (name == "small") return small_params();
  if (name == "medium") return medium_params();
  if (name == "big") return big_params();
  BNECK_EXPECT(false, "unknown topology preset (small|medium|big)");
}

namespace {

class Builder {
 public:
  Builder(const TransitStubParams& p, Rng& rng) : p_(p), rng_(rng) {}

  net::Network build() {
    BNECK_EXPECT(p_.transit_domains >= 1 && p_.routers_per_transit >= 1,
                 "transit level must be non-empty");
    BNECK_EXPECT(p_.stubs_per_transit_router >= 0 && p_.routers_per_stub >= 1,
                 "bad stub parameters");
    build_transit_level();
    build_stub_level();
    attach_hosts();
    net_.validate();
    return std::move(net_);
  }

 private:
  TimeNs router_delay() {
    if (p_.delay_model == DelayModel::Lan) return p_.lan_delay;
    return rng_.uniform_int(p_.wan_delay_min, p_.wan_delay_max);
  }

  /// Connects `nodes` as a ring (or single pair) plus random chords.
  void connect_domain(const std::vector<NodeId>& nodes, Rate capacity) {
    const auto n = static_cast<std::int32_t>(nodes.size());
    if (n == 2) {
      net_.add_link_pair(nodes[0], nodes[1], capacity, router_delay());
      return;
    }
    for (std::int32_t i = 0; i < n && n >= 3; ++i) {
      net_.add_link_pair(nodes[static_cast<std::size_t>(i)],
                         nodes[static_cast<std::size_t>((i + 1) % n)],
                         capacity, router_delay());
    }
    // Sparse random chords: skip ring edges and duplicates are avoided by
    // only considering i+2..n-1 neighbours of i (upper triangle).
    for (std::int32_t i = 0; i + 2 < n; ++i) {
      for (std::int32_t j = i + 2; j < n; ++j) {
        if (i == 0 && j == n - 1) continue;  // that's a ring edge
        if (rng_.chance(p_.chord_probability)) {
          net_.add_link_pair(nodes[static_cast<std::size_t>(i)],
                             nodes[static_cast<std::size_t>(j)], capacity,
                             router_delay());
        }
      }
    }
  }

  void build_transit_level() {
    transit_routers_.resize(static_cast<std::size_t>(p_.transit_domains));
    for (std::int32_t d = 0; d < p_.transit_domains; ++d) {
      auto& domain = transit_routers_[static_cast<std::size_t>(d)];
      for (std::int32_t r = 0; r < p_.routers_per_transit; ++r) {
        domain.push_back(net_.add_router());
      }
      connect_domain(domain, p_.transit_capacity);
    }
    // Inter-domain backbone: ring of domains through randomly chosen
    // border routers (single inter-domain pair when only two domains).
    const auto nd = p_.transit_domains;
    for (std::int32_t d = 0; d < nd - (nd == 2 ? 1 : 0) && nd >= 2; ++d) {
      const auto& a = transit_routers_[static_cast<std::size_t>(d)];
      const auto& b = transit_routers_[static_cast<std::size_t>((d + 1) % nd)];
      net_.add_link_pair(rng_.pick(a), rng_.pick(b), p_.transit_capacity,
                         router_delay());
    }
  }

  void build_stub_level() {
    for (const auto& domain : transit_routers_) {
      for (const NodeId transit_router : domain) {
        for (std::int32_t s = 0; s < p_.stubs_per_transit_router; ++s) {
          std::vector<NodeId> stub;
          for (std::int32_t r = 0; r < p_.routers_per_stub; ++r) {
            stub.push_back(net_.add_router());
          }
          connect_domain(stub, p_.stub_capacity);
          // Gateway: first stub router uplinks to its transit router.
          net_.add_link_pair(stub[0], transit_router, p_.stub_capacity,
                             router_delay());
          stub_routers_.insert(stub_routers_.end(), stub.begin(), stub.end());
        }
      }
    }
    // Degenerate configuration with no stub level: hosts attach to
    // transit routers instead.
    if (stub_routers_.empty()) {
      for (const auto& domain : transit_routers_) {
        stub_routers_.insert(stub_routers_.end(), domain.begin(), domain.end());
      }
    }
  }

  void attach_hosts() {
    for (std::int32_t h = 0; h < p_.hosts; ++h) {
      // Host access links always have LAN delay, as in the paper's WAN
      // scenario ("all the links between hosts and routers are assigned
      // 1 microsecond of propagation time").
      net_.add_host(rng_.pick(stub_routers_), p_.host_capacity, p_.lan_delay);
    }
  }

  const TransitStubParams& p_;
  Rng& rng_;
  net::Network net_;
  std::vector<std::vector<NodeId>> transit_routers_;
  std::vector<NodeId> stub_routers_;
};

}  // namespace

net::Network make_transit_stub(const TransitStubParams& params, Rng& rng) {
  return Builder(params, rng).build();
}

}  // namespace bneck::topo
