// gt-itm-style transit-stub Internet topologies.
//
// Reproduces the topology class of the paper's evaluation (§IV):
// a two-level hierarchy of transit domains whose routers each attach stub
// domains, with hosts hanging off stub routers.  Capacity classes follow
// the paper: 100 Mbps host-stub links, 200 Mbps stub-stub links, 500 Mbps
// transit links.  Two delay models: LAN (1 us everywhere) and WAN
// (1..10 ms uniform on router links, 1 us on host links).
//
// Presets:
//   Small  : 110 routers   (1 transit domain x 10 routers, 10-router stubs)
//   Medium : 1100 routers  (10 x 10 transit, 10-router stubs)
//   Big    : 11000 routers (10 x 100 transit, 10-router stubs)
#pragma once

#include <cstdint>
#include <string>

#include "base/rng.hpp"
#include "net/network.hpp"

namespace bneck::topo {

enum class DelayModel : std::uint8_t { Lan, Wan };

struct TransitStubParams {
  std::int32_t transit_domains = 1;
  std::int32_t routers_per_transit = 10;
  std::int32_t stubs_per_transit_router = 1;
  std::int32_t routers_per_stub = 10;
  std::int32_t hosts = 0;

  Rate host_capacity = 100.0;     // Mbps, host <-> stub router
  Rate stub_capacity = 200.0;     // Mbps, stub <-> stub and stub <-> transit
  Rate transit_capacity = 500.0;  // Mbps, transit <-> transit

  DelayModel delay_model = DelayModel::Lan;
  TimeNs lan_delay = microseconds(1);
  TimeNs wan_delay_min = milliseconds(1);
  TimeNs wan_delay_max = milliseconds(10);

  /// Probability of each possible extra intra-domain chord beyond the
  /// ring backbone (kept low: gt-itm defaults give sparse domains).
  double chord_probability = 0.15;

  [[nodiscard]] std::int32_t total_routers() const {
    const std::int32_t transit = transit_domains * routers_per_transit;
    return transit + transit * stubs_per_transit_router * routers_per_stub;
  }
};

/// Paper presets.  `hosts` defaults to 0; set it per experiment.
TransitStubParams small_params();
TransitStubParams medium_params();
TransitStubParams big_params();

/// Parses "small" / "medium" / "big" (case-sensitive).
TransitStubParams params_by_name(const std::string& name);

/// Builds the topology.  Deterministic given the Rng seed.  Hosts are
/// spread uniformly at random over stub routers.
net::Network make_transit_stub(const TransitStubParams& params, Rng& rng);

}  // namespace bneck::topo
