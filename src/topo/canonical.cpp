#include "topo/canonical.hpp"

#include <set>
#include <utility>

namespace bneck::topo {

namespace {

void attach_hosts(net::Network& net, const std::vector<NodeId>& routers,
                  std::int32_t hosts_per_router, const CanonicalOptions& opt) {
  for (const NodeId r : routers) {
    for (std::int32_t h = 0; h < hosts_per_router; ++h) {
      net.add_host(r, opt.access_capacity, opt.access_delay);
    }
  }
}

}  // namespace

net::Network make_line(std::int32_t n_routers, const CanonicalOptions& opt) {
  BNECK_EXPECT(n_routers >= 1, "line needs >= 1 router");
  net::Network net;
  std::vector<NodeId> routers;
  for (std::int32_t i = 0; i < n_routers; ++i) routers.push_back(net.add_router());
  for (std::int32_t i = 0; i + 1 < n_routers; ++i) {
    net.add_link_pair(routers[static_cast<std::size_t>(i)],
                      routers[static_cast<std::size_t>(i + 1)],
                      opt.router_capacity, opt.router_delay);
  }
  attach_hosts(net, routers, opt.hosts_per_router, opt);
  return net;
}

net::Network make_star(std::int32_t n_leaves, const CanonicalOptions& opt) {
  BNECK_EXPECT(n_leaves >= 1, "star needs >= 1 leaf");
  net::Network net;
  std::vector<NodeId> routers{net.add_router()};
  for (std::int32_t i = 0; i < n_leaves; ++i) {
    const NodeId leaf = net.add_router();
    net.add_link_pair(routers[0], leaf, opt.router_capacity, opt.router_delay);
    routers.push_back(leaf);
  }
  attach_hosts(net, routers, opt.hosts_per_router, opt);
  return net;
}

net::Network make_dumbbell(std::int32_t n_pairs, Rate bottleneck_capacity,
                           const CanonicalOptions& opt) {
  BNECK_EXPECT(n_pairs >= 1, "dumbbell needs >= 1 pair");
  net::Network net;
  const NodeId left = net.add_router();
  const NodeId right = net.add_router();
  net.add_link_pair(left, right, bottleneck_capacity, opt.router_delay);
  for (std::int32_t i = 0; i < n_pairs; ++i) {
    net.add_host(left, opt.access_capacity, opt.access_delay);
  }
  for (std::int32_t i = 0; i < n_pairs; ++i) {
    net.add_host(right, opt.access_capacity, opt.access_delay);
  }
  return net;
}

net::Network make_tree(std::int32_t depth, const CanonicalOptions& opt) {
  BNECK_EXPECT(depth >= 0, "negative tree depth");
  net::Network net;
  std::vector<NodeId> level{net.add_router()};
  std::vector<NodeId> leaves;
  for (std::int32_t d = 0; d < depth; ++d) {
    std::vector<NodeId> next;
    for (const NodeId parent : level) {
      for (int c = 0; c < 2; ++c) {
        const NodeId child = net.add_router();
        net.add_link_pair(parent, child, opt.router_capacity, opt.router_delay);
        next.push_back(child);
      }
    }
    level = std::move(next);
  }
  leaves = level;
  attach_hosts(net, leaves, opt.hosts_per_router, opt);
  return net;
}

net::Network make_ring(std::int32_t n_routers, const CanonicalOptions& opt) {
  BNECK_EXPECT(n_routers >= 3, "ring needs >= 3 routers");
  net::Network net;
  std::vector<NodeId> routers;
  for (std::int32_t i = 0; i < n_routers; ++i) routers.push_back(net.add_router());
  for (std::int32_t i = 0; i < n_routers; ++i) {
    net.add_link_pair(routers[static_cast<std::size_t>(i)],
                      routers[static_cast<std::size_t>((i + 1) % n_routers)],
                      opt.router_capacity, opt.router_delay);
  }
  attach_hosts(net, routers, opt.hosts_per_router, opt);
  return net;
}

net::Network make_parking_lot(std::int32_t n_links,
                              const CanonicalOptions& opt) {
  BNECK_EXPECT(n_links >= 1, "parking lot needs >= 1 link");
  CanonicalOptions line_opt = opt;
  line_opt.hosts_per_router = 1;
  return make_line(n_links + 1, line_opt);
}

net::Network make_random(std::int32_t n_routers, std::int32_t extra_edges,
                         std::int32_t n_hosts, Rng& rng,
                         const CanonicalOptions& opt) {
  BNECK_EXPECT(n_routers >= 1, "random graph needs >= 1 router");
  net::Network net;
  std::vector<NodeId> routers;
  for (std::int32_t i = 0; i < n_routers; ++i) routers.push_back(net.add_router());

  std::set<std::pair<std::int32_t, std::int32_t>> edges;
  const auto add_edge = [&](std::int32_t a, std::int32_t b) {
    if (a > b) std::swap(a, b);
    if (a == b || !edges.insert({a, b}).second) return false;
    net.add_link_pair(routers[static_cast<std::size_t>(a)],
                      routers[static_cast<std::size_t>(b)],
                      opt.router_capacity, opt.router_delay);
    return true;
  };

  // Random spanning tree: attach node i to a uniformly chosen earlier node.
  for (std::int32_t i = 1; i < n_routers; ++i) {
    add_edge(i, static_cast<std::int32_t>(rng.uniform_int(0, i - 1)));
  }
  // Extra chords; give up after bounded attempts on dense graphs.
  std::int32_t added = 0;
  std::int64_t attempts = 0;
  const std::int64_t max_attempts = 20LL * (extra_edges + 1);
  while (added < extra_edges && attempts++ < max_attempts && n_routers > 2) {
    const auto a = static_cast<std::int32_t>(rng.uniform_int(0, n_routers - 1));
    const auto b = static_cast<std::int32_t>(rng.uniform_int(0, n_routers - 1));
    if (add_edge(a, b)) ++added;
  }

  for (std::int32_t h = 0; h < n_hosts; ++h) {
    net.add_host(routers[static_cast<std::size_t>(h % n_routers)],
                 opt.access_capacity, opt.access_delay);
  }
  return net;
}

}  // namespace bneck::topo
