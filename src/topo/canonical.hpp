// Canonical topologies for tests, examples and hand-checkable scenarios.
//
// Every builder attaches hosts in a documented, deterministic order so a
// test can address "the i-th host of router j" reliably via
// Network::hosts().
#pragma once

#include <cstdint>

#include "base/rng.hpp"
#include "net/network.hpp"

namespace bneck::topo {

struct CanonicalOptions {
  Rate router_capacity = 200.0;   // Mbps on router-router links
  Rate access_capacity = 100.0;   // Mbps on host-router links
  TimeNs router_delay = microseconds(1);
  TimeNs access_delay = microseconds(1);
  std::int32_t hosts_per_router = 1;
};

/// Routers r0 - r1 - ... - r(n-1) in a chain; hosts_per_router hosts on
/// each.  Hosts appear in router order (all of r0's hosts, then r1's, ...).
net::Network make_line(std::int32_t n_routers, const CanonicalOptions& opt = {});

/// A hub router with n_leaves leaf routers; hosts on every router (hub
/// hosts first).
net::Network make_star(std::int32_t n_leaves, const CanonicalOptions& opt = {});

/// Classic dumbbell: n_pairs senders on the left router, n_pairs
/// receivers on the right router, a single bottleneck link between them.
/// Hosts: all senders (left) first, then all receivers (right).
net::Network make_dumbbell(std::int32_t n_pairs, Rate bottleneck_capacity,
                           const CanonicalOptions& opt = {});

/// Complete binary tree of routers of the given depth (depth 0 = 1
/// router); hosts on leaf routers only.
net::Network make_tree(std::int32_t depth, const CanonicalOptions& opt = {});

/// Ring of n routers; hosts on every router.
net::Network make_ring(std::int32_t n_routers, const CanonicalOptions& opt = {});

/// The classic "parking lot" max-min example: a chain of n_links
/// router-router links.  Intended use: one long session crossing all
/// links plus one short session per link.  Hosts: one per router, in
/// router order (router 0 .. router n_links).
net::Network make_parking_lot(std::int32_t n_links,
                              const CanonicalOptions& opt = {});

/// Random connected router graph: spanning tree plus extra_edges random
/// chords (no duplicates, no self-loops); hosts round-robin on routers.
net::Network make_random(std::int32_t n_routers, std::int32_t extra_edges,
                         std::int32_t n_hosts, Rng& rng,
                         const CanonicalOptions& opt = {});

}  // namespace bneck::topo
