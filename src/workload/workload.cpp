#include "workload/workload.hpp"

#include <algorithm>
#include <functional>
#include <queue>

namespace bneck::workload {

std::vector<SessionPlan> generate_sessions(const net::Network& net,
                                           const net::PathFinder& paths,
                                           const WorkloadConfig& cfg,
                                           Rng& rng,
                                           std::vector<bool>& used_sources,
                                           std::int32_t first_id) {
  BNECK_EXPECT(cfg.sessions >= 0, "negative session count");
  BNECK_EXPECT(net.host_count() >= 2, "need at least two hosts");
  used_sources.resize(static_cast<std::size_t>(net.host_count()), false);

  // Collect the free source pool and sample from it without replacement.
  std::vector<std::int32_t> free_sources;
  for (std::int32_t i = 0; i < net.host_count(); ++i) {
    if (!used_sources[static_cast<std::size_t>(i)]) free_sources.push_back(i);
  }
  BNECK_EXPECT(static_cast<std::int32_t>(free_sources.size()) >= cfg.sessions,
               "not enough unused source hosts");
  rng.shuffle(free_sources);

  std::vector<SessionPlan> plans;
  plans.reserve(static_cast<std::size_t>(cfg.sessions));
  for (std::int32_t k = 0; k < cfg.sessions; ++k) {
    const std::int32_t src_idx = free_sources[static_cast<std::size_t>(k)];
    used_sources[static_cast<std::size_t>(src_idx)] = true;
    const NodeId src = net.hosts()[static_cast<std::size_t>(src_idx)];
    // Destination: any other host (it may source its own session).
    NodeId dst = src;
    std::optional<net::Path> path;
    while (!path.has_value()) {
      do {
        dst = net.hosts()[static_cast<std::size_t>(
            rng.uniform_int(0, net.host_count() - 1))];
      } while (dst == src);
      path = paths.shortest_path(src, dst);  // retry if disconnected
    }
    SessionPlan plan;
    plan.id = SessionId{first_id + k};
    plan.path = std::move(*path);
    plan.demand = rng.chance(cfg.demand_fraction)
                      ? rng.uniform_real(cfg.demand_min, cfg.demand_max)
                      : kRateInfinity;
    // Guarded so the default (weight_fraction == 0) consumes no RNG draws
    // and classic workloads stay byte-identical.
    plan.weight = cfg.weight_fraction > 0 && rng.chance(cfg.weight_fraction)
                      ? rng.uniform_real(cfg.weight_min, cfg.weight_max)
                      : 1.0;
    plan.join_at = cfg.window_start +
                   rng.uniform_int(0, std::max<TimeNs>(0, cfg.join_window - 1));
    plan.source_host_index = src_idx;
    plans.push_back(std::move(plan));
  }
  return plans;
}

std::vector<SessionPlan> generate_sessions(const net::Network& net,
                                           const net::PathFinder& paths,
                                           const WorkloadConfig& cfg,
                                           Rng& rng) {
  std::vector<bool> used;
  return generate_sessions(net, paths, cfg, rng, used, 0);
}

void schedule_joins(sim::Simulator& sim, proto::FairShareProtocol& protocol,
                    const std::vector<SessionPlan>& plans) {
  for (const SessionPlan& plan : plans) {
    sim.schedule_at(plan.join_at, [&protocol, plan] {
      protocol.join(plan.id, plan.path, plan.demand, plan.weight);
    });
  }
}

std::vector<SessionPlan> generate_poisson_churn(const net::Network& net,
                                                const net::PathFinder& paths,
                                                const ChurnConfig& cfg,
                                                Rng& rng) {
  BNECK_EXPECT(cfg.arrivals_per_ms > 0, "arrival rate must be positive");
  BNECK_EXPECT(cfg.mean_lifetime > 0, "mean lifetime must be positive");
  BNECK_EXPECT(net.host_count() >= 2, "need at least two hosts");

  // Track per-host occupancy with a min-heap of (release time, host).
  std::vector<std::int32_t> free_hosts;
  for (std::int32_t i = 0; i < net.host_count(); ++i) free_hosts.push_back(i);
  using Busy = std::pair<TimeNs, std::int32_t>;
  std::priority_queue<Busy, std::vector<Busy>, std::greater<>> busy;

  std::vector<SessionPlan> plans;
  std::int32_t next_id = 0;
  TimeNs clock = 0;
  const double mean_gap_ns = 1e6 / cfg.arrivals_per_ms;
  while (true) {
    clock += static_cast<TimeNs>(rng.exponential(mean_gap_ns)) + 1;
    if (clock >= cfg.horizon) break;
    while (!busy.empty() && busy.top().first <= clock) {
      free_hosts.push_back(busy.top().second);
      busy.pop();
    }
    if (free_hosts.empty()) continue;  // all hosts busy: arrival dropped
    const auto pick = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(free_hosts.size()) - 1));
    const std::int32_t src_idx = free_hosts[pick];
    free_hosts[pick] = free_hosts.back();
    free_hosts.pop_back();

    const NodeId src = net.hosts()[static_cast<std::size_t>(src_idx)];
    NodeId dst = src;
    std::optional<net::Path> path;
    while (!path.has_value()) {
      do {
        dst = net.hosts()[static_cast<std::size_t>(
            rng.uniform_int(0, net.host_count() - 1))];
      } while (dst == src);
      path = paths.shortest_path(src, dst);
    }

    SessionPlan plan;
    plan.id = SessionId{next_id++};
    plan.path = std::move(*path);
    plan.demand = rng.chance(cfg.demand_fraction)
                      ? rng.uniform_real(cfg.demand_min, cfg.demand_max)
                      : kRateInfinity;
    plan.join_at = clock;
    plan.source_host_index = src_idx;
    const TimeNs lifetime = static_cast<TimeNs>(rng.exponential(
                                static_cast<double>(cfg.mean_lifetime))) +
                            1;
    const TimeNs depart = clock + lifetime;
    if (depart < cfg.horizon) {
      plan.leave_at = depart;
      busy.push({depart, src_idx});
    } else {
      plan.leave_at = kTimeNever;  // stays past the end of the run
      busy.push({kTimeNever, src_idx});
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

void schedule_churn(sim::Simulator& sim, proto::FairShareProtocol& protocol,
                    const std::vector<SessionPlan>& plans) {
  schedule_joins(sim, protocol, plans);
  for (const SessionPlan& plan : plans) {
    if (plan.leave_at == kTimeNever) continue;
    BNECK_EXPECT(plan.leave_at > plan.join_at, "leave precedes join");
    sim.schedule_at(plan.leave_at,
                    [&protocol, id = plan.id] { protocol.leave(id); });
  }
}

}  // namespace bneck::workload
