#include "workload/parallel.hpp"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "base/expect.hpp"

namespace bneck::workload {

std::size_t default_parallelism() {
  if (const char* env = std::getenv("BNECK_THREADS")) {
    // A set-but-unusable value is a configuration error, not a hint: a
    // silent fallback to all cores would make shard/thread-scaling
    // measurements lie about their worker count.  Empty string means
    // unset (the common `BNECK_THREADS= cmd` idiom).
    if (*env != '\0') {
      char* end = nullptr;
      errno = 0;
      const long n = std::strtol(env, &end, 10);
      BNECK_EXPECT(end != env && *end == '\0',
                   "BNECK_THREADS is not a number");
      BNECK_EXPECT(errno != ERANGE && n > 0,
                   "BNECK_THREADS must be a positive thread count");
      return static_cast<std::size_t>(n);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void parallel_for_index(std::size_t count, std::size_t threads,
                        const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (threads == 0) threads = default_parallelism();
  if (threads > count) threads = count;

  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        // Drain remaining indexes so every worker stops promptly.
        next.store(count, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  try {
    for (std::size_t w = 1; w < threads; ++w) pool.emplace_back(worker);
  } catch (...) {
    // Thread spawn failed (resource exhaustion): stop handing out work,
    // join what started, and surface the error instead of letting the
    // vector of joinable threads terminate the process on unwind.
    next.store(count, std::memory_order_relaxed);
    for (std::thread& t : pool) t.join();
    throw;
  }
  worker();  // the calling thread participates
  for (std::thread& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace bneck::workload
