// Deterministic fan-out of independent simulation runs.
//
// The experiment sweeps (exp1's network × scenario × N grid, exp3's
// protocol set) are embarrassingly parallel: every point builds its own
// network, Simulator and Rng from an explicit seed, so runs share no
// state and their results do not depend on execution order.  parallel_map
// runs such points on a small thread pool and returns the results in
// input order — the output of a parallel sweep is byte-identical to the
// sequential one, at any worker count.
//
// exp2's phase sequence is the counterexample: its phases evolve one
// simulation and are inherently sequential; its speed comes from the
// typed event core, not from this header.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace bneck::workload {

/// Worker count used when `threads == 0`: $BNECK_THREADS if set and
/// positive, else std::thread::hardware_concurrency().
[[nodiscard]] std::size_t default_parallelism();

/// Invokes fn(i) for i in [0, count) across up to `threads` workers
/// (0 = default_parallelism()).  fn must not touch shared mutable state;
/// indexes are claimed from an atomic counter, so the assignment of
/// indexes to workers is nondeterministic — results must only depend on
/// the index.  Rethrows the first task exception after all workers stop.
void parallel_for_index(std::size_t count, std::size_t threads,
                        const std::function<void(std::size_t)>& fn);

/// parallel_for_index collecting one R per index, in input order.
template <class R>
std::vector<R> parallel_map(std::size_t count, std::size_t threads,
                            const std::function<R(std::size_t)>& fn) {
  std::vector<R> out(count);
  parallel_for_index(count, threads,
                     [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace bneck::workload
