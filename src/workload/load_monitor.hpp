// Link load accounting from assigned rates.
//
// The paper argues (§I-B, Fig. 7 right) that B-Neck is network friendly:
// its transient rate assignments are conservative, so links are never
// driven above capacity while the allocation converges, whereas
// RM-cell protocols like BFYZ overshoot and transiently oversubscribe
// bottlenecks.  This monitor makes that claim measurable: it integrates
// each link's aggregate *assigned* rate over simulated time (sessions
// are assumed to transmit at whatever rate the protocol last granted
// them) and reports peak utilization and time spent above capacity.
#pragma once

#include <unordered_map>
#include <vector>

#include "base/ids.hpp"
#include "base/rate.hpp"
#include "base/time.hpp"
#include "net/routing.hpp"

namespace bneck::workload {

class LinkLoadMonitor {
 public:
  explicit LinkLoadMonitor(const net::Network& net);

  /// Declares a session's path; must precede set_rate for that session.
  void register_session(SessionId s, const net::Path& path);

  /// The session now transmits at `rate` (0 = stopped/left), effective
  /// at simulated time `t`.  Times must be non-decreasing.
  void set_rate(SessionId s, Rate rate, TimeNs t);

  /// Closes all accounting intervals at time `t` (call before reading).
  void finalize(TimeNs t);

  struct LinkLoad {
    Rate capacity = 0;
    Rate current = 0;        // aggregate assigned rate now
    Rate peak = 0;           // highest aggregate ever
    TimeNs overloaded_for = 0;  // total time with load > capacity
  };

  [[nodiscard]] LinkLoad load(LinkId e) const;

  /// Highest peak/capacity ratio over all links that ever carried load.
  [[nodiscard]] double max_utilization() const;

  /// Total overloaded time of the worst link.
  [[nodiscard]] TimeNs worst_overload() const;

  /// Links whose peak exceeded capacity (by more than the tolerance).
  [[nodiscard]] std::vector<LinkId> overloaded_links() const;

 private:
  struct State {
    Rate current = 0;
    Rate peak = 0;
    TimeNs last_change = 0;
    TimeNs overloaded_for = 0;
    bool touched = false;
  };

  void apply(LinkId e, Rate delta, TimeNs t);

  const net::Network& net_;
  std::vector<State> links_;  // per directed link
  std::unordered_map<SessionId, std::pair<net::Path, Rate>> sessions_;
};

}  // namespace bneck::workload
