// Experiment harness: the measurement machinery behind every figure of
// the paper's evaluation.
//
//   PacketBinner    — per-packet-type counts in fixed time bins (Fig. 6)
//                     and per-interval totals (Figs. 5 right, 8).
//   ErrorSampler    — relative rate error per session and per bottleneck
//                     link against the centralized solution (Fig. 7),
//                     plus convergence detection for the non-quiescent
//                     baselines.
//   PhasePlanner    — deterministic churn plans drawn once per phase,
//                     shared verbatim by the single-thread and sharded
//                     runners so their figure output is byte-identical.
//   DynamicsRunner  — phased join/leave/change dynamics with quiescence
//                     measurement (Figs. 5 and 6, Experiment 2).
//   ShardedDynamicsRunner — the same phases on core::ShardedBneck.
//   run_tracked     — fixed-horizon sampled run (Experiment 3).
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/maxmin.hpp"
#include "core/sharded_bneck.hpp"
#include "core/trace.hpp"
#include "proto/bneck_driver.hpp"
#include "stats/summary.hpp"
#include "stats/time_series.hpp"
#include "workload/workload.hpp"

namespace bneck::workload {

/// TraceSink that bins B-Neck packets by type (categories 0..6 following
/// core::PacketType order).  Also usable as a plain per-crossing counter
/// for cell-based protocols through listener().
class PacketBinner : public core::TraceSink {
 public:
  explicit PacketBinner(TimeNs bin_width);

  void on_packet_sent(TimeNs t, const core::Packet& p, LinkId) override;

  /// Listener for FairShareProtocol::set_packet_listener; counts every
  /// crossing under the pseudo-category "Cell".
  [[nodiscard]] std::function<void(TimeNs)> listener();

  [[nodiscard]] const stats::BinnedCounter& bins() const { return bins_; }

 private:
  stats::BinnedCounter bins_;
};

/// Compares a protocol's currently assigned rates with the centralized
/// max-min solution of the current session set (cached between samples
/// while the set is unchanged).
class ErrorSampler {
 public:
  ErrorSampler(const net::Network& net, const proto::FairShareProtocol& p);

  struct Sample {
    TimeNs t = 0;
    /// Per-session error e = 100 (a - x)/x, a = assigned, x = max-min
    /// (a session without a rate yet scores -100).
    stats::Summary source_error;
    /// Per-bottleneck-link stress e = 100 (Σa - Σx)/Σx.
    stats::Summary link_error;
    double max_abs_error = 0;  // over sessions, in percent
    std::size_t sessions = 0;
  };

  [[nodiscard]] Sample sample(TimeNs t);

 private:
  void refresh_solution(const std::vector<core::SessionSpec>& specs);

  const net::Network& net_;
  const proto::FairShareProtocol& proto_;
  std::size_t cached_sig_ = 0;
  core::MaxMinSolution solution_;
  // Sessions crossing each saturated link (indices into the spec vector).
  std::vector<std::pair<LinkId, std::vector<std::size_t>>> bottleneck_members_;
};

/// One phase of Experiment 2: a burst of churn inside a window, then run
/// to quiescence.
struct PhaseSpec {
  std::int32_t joins = 0;
  std::int32_t leaves = 0;
  std::int32_t changes = 0;
  TimeNs window = milliseconds(1);
  double demand_fraction = 0.0;  // for joins
};

struct PhaseResult {
  TimeNs started_at = 0;
  TimeNs quiescent_at = 0;
  std::uint64_t packets = 0;       // crossings during this phase
  std::size_t active_sessions = 0;

  [[nodiscard]] TimeNs duration() const { return quiescent_at - started_at; }
};

/// The fully-drawn churn of one phase: every join plan plus the (id,
/// time) of every leave and the (id, demand, time) of every change.
/// A plan is what both engines schedule — the rng is consulted only
/// while building it, never while scheduling, which is how the sharded
/// runner reproduces the classic runner's workload bit-for-bit.
struct PhasePlan {
  struct Leave {
    std::int32_t id;
    TimeNs when;
  };
  struct Change {
    std::int32_t id;
    Rate demand;
    TimeNs when;
  };
  std::vector<SessionPlan> joins;
  std::vector<Leave> leaves;
  std::vector<Change> changes;
};

/// Draws phase plans in the exact rng order DynamicsRunner has always
/// used (generate_sessions, then the shuffled churn pool, then per-leave
/// and per-change draws) — the byte-identity gate pins that order.
/// Tracks session-id allocation and source-host reuse across phases.
class PhasePlanner {
 public:
  PhasePlanner(const net::Network& net, Rng& rng);

  /// Plans one phase starting at `now` (joins/leaves/changes all land in
  /// [now, now + phase.window)).
  PhasePlan plan_phase(const PhaseSpec& phase, TimeNs now);

 private:
  const net::Network& net_;
  Rng& rng_;
  net::PathFinder paths_;
  std::vector<bool> used_sources_;
  // Active session id -> index of its source host (freed on leave).
  std::unordered_map<std::int32_t, std::int32_t> active_;
  std::int32_t next_id_ = 0;
};

/// Drives B-Neck through arbitrary phase sequences on one network,
/// tracking per-type packet bins and verifying rates between phases.
class DynamicsRunner {
 public:
  DynamicsRunner(const net::Network& net, Rng& rng,
                 core::BneckConfig config = {},
                 TimeNs bin_width = milliseconds(5));

  PhaseResult run_phase(const PhaseSpec& phase);

  /// Max relative deviation (fraction) of notified rates from the
  /// centralized solution; 0 when perfectly converged.
  [[nodiscard]] double max_rate_error() const;

  [[nodiscard]] const stats::BinnedCounter& bins() const {
    return binner_.bins();
  }
  [[nodiscard]] const proto::BneckDriver& driver() const { return driver_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

 private:
  const net::Network& net_;
  sim::Simulator sim_;
  PacketBinner binner_;
  proto::BneckDriver driver_;
  PhasePlanner planner_;
};

/// DynamicsRunner's phases on the sharded parallel engine
/// (core::ShardedBneck): same workload plans, same figure output, K
/// worker threads.  Per-shard PacketBinners absorb each shard's trace on
/// its own worker thread; bins() merges them after the run (integer
/// sums, so the merged series is independent of shard count).
class ShardedDynamicsRunner {
 public:
  ShardedDynamicsRunner(const net::Network& net, Rng& rng,
                        core::ShardedConfig config = {},
                        TimeNs bin_width = milliseconds(5));

  PhaseResult run_phase(const PhaseSpec& phase);

  /// Max relative deviation (fraction) of notified rates from the
  /// centralized solution; 0 when perfectly converged.
  [[nodiscard]] double max_rate_error() const;

  /// Per-type packet bins merged across shards.
  [[nodiscard]] stats::BinnedCounter bins() const;

  [[nodiscard]] const core::ShardedBneck& engine() const { return *engine_; }

 private:
  const net::Network& net_;
  TimeNs bin_width_;
  std::vector<std::unique_ptr<PacketBinner>> binners_;  // one per shard
  std::unique_ptr<core::ShardedBneck> engine_;
  PhasePlanner planner_;
};

/// Experiment-3-style run: fixed horizon, periodic error samples.
struct TrackedConfig {
  TimeNs horizon = milliseconds(120);
  TimeNs sample_interval = milliseconds(3);
  /// Convergence: first sample whose max |error| is below this (percent).
  double tolerance_percent = 0.5;
};

struct TrackedResult {
  std::vector<ErrorSampler::Sample> samples;
  std::optional<TimeNs> converged_at;
  std::uint64_t total_packets = 0;
};

TrackedResult run_tracked(sim::Simulator& sim,
                          proto::FairShareProtocol& protocol,
                          const net::Network& net, const TrackedConfig& cfg);

/// Schedules `leave` for a subset of plans: each leave happens after the
/// session's own join, inside [window_start, window_end).
void schedule_leaves(sim::Simulator& sim, proto::FairShareProtocol& protocol,
                     const std::vector<SessionPlan>& plans,
                     std::size_t first_index, std::size_t count,
                     TimeNs window_end, Rng& rng);

}  // namespace bneck::workload
