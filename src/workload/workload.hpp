// Workload generation: random session populations over a network.
//
// Follows the paper's experimental setup (§IV): sessions pick a source
// and a destination host uniformly at random (each host sources at most
// one session, per the model of §II), paths are shortest paths, join
// times are uniform in a window (1 ms in Experiments 1 and 2).
#pragma once

#include <vector>

#include "base/rng.hpp"
#include "core/session.hpp"
#include "net/routing.hpp"
#include "proto/protocol.hpp"
#include "sim/simulator.hpp"

namespace bneck::workload {

struct SessionPlan {
  SessionId id;
  net::Path path;
  Rate demand = kRateInfinity;
  double weight = 1.0;  // max-min weight (weighted extension)
  TimeNs join_at = 0;
  /// Departure time for open-system (churn) workloads; kTimeNever for
  /// sessions that stay.
  TimeNs leave_at = kTimeNever;
  /// Index of the source host in Network::hosts() (for source reuse
  /// bookkeeping when sessions leave).
  std::int32_t source_host_index = -1;
};

struct WorkloadConfig {
  std::int32_t sessions = 0;
  /// Joins are uniform in [window_start, window_start + join_window).
  TimeNs window_start = 0;
  TimeNs join_window = milliseconds(1);
  /// Fraction of sessions with a finite maximum-rate request.
  double demand_fraction = 0.0;
  Rate demand_min = 1.0;
  Rate demand_max = 120.0;
  /// Fraction of sessions with a non-unit max-min weight, sampled
  /// uniformly from [weight_min, weight_max].  0 (default) keeps the
  /// classic unweighted workloads byte-identical.
  double weight_fraction = 0.0;
  double weight_min = 0.25;
  double weight_max = 4.0;
};

/// Generates `cfg.sessions` session plans.  Source hosts are sampled
/// without replacement from hosts *not* in `used_sources` (which is
/// updated); destinations are any other host.  Ids are allocated from
/// `first_id` upwards.
std::vector<SessionPlan> generate_sessions(const net::Network& net,
                                           const net::PathFinder& paths,
                                           const WorkloadConfig& cfg,
                                           Rng& rng,
                                           std::vector<bool>& used_sources,
                                           std::int32_t first_id);

/// Convenience overload for a fresh network (no sources used yet).
std::vector<SessionPlan> generate_sessions(const net::Network& net,
                                           const net::PathFinder& paths,
                                           const WorkloadConfig& cfg,
                                           Rng& rng);

/// Schedules every plan's join on the simulator.
void schedule_joins(sim::Simulator& sim, proto::FairShareProtocol& protocol,
                    const std::vector<SessionPlan>& plans);

/// Open-system churn: sessions arrive as a Poisson process and hold for
/// exponential lifetimes, the classic steady-state traffic model.  The
/// generator respects source-host exclusivity over time (a host is busy
/// from its session's join until its leave; arrivals with no free host
/// are dropped).
struct ChurnConfig {
  double arrivals_per_ms = 1.0;
  TimeNs mean_lifetime = milliseconds(20);
  TimeNs horizon = milliseconds(100);
  double demand_fraction = 0.0;
  Rate demand_min = 1.0;
  Rate demand_max = 120.0;
};

/// Plans with both join_at and leave_at set (leave_at capped at the
/// horizon counts as "stays past the end": kTimeNever).
std::vector<SessionPlan> generate_poisson_churn(const net::Network& net,
                                                const net::PathFinder& paths,
                                                const ChurnConfig& cfg,
                                                Rng& rng);

/// Schedules joins and (finite) leaves of churn plans.
void schedule_churn(sim::Simulator& sim, proto::FairShareProtocol& protocol,
                    const std::vector<SessionPlan>& plans);

}  // namespace bneck::workload
