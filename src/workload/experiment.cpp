#include "workload/experiment.hpp"

#include <algorithm>
#include <cmath>

namespace bneck::workload {

namespace {

std::vector<std::string> packet_categories() {
  std::vector<std::string> cats;
  for (int t = 0; t < core::kPacketTypeCount; ++t) {
    cats.emplace_back(
        core::packet_type_name(static_cast<core::PacketType>(t)));
  }
  cats.emplace_back("Cell");
  return cats;
}

}  // namespace

PacketBinner::PacketBinner(TimeNs bin_width)
    : bins_(bin_width, packet_categories()) {}

void PacketBinner::on_packet_sent(TimeNs t, const core::Packet& p, LinkId) {
  bins_.add(t, static_cast<std::size_t>(p.type));
}

std::function<void(TimeNs)> PacketBinner::listener() {
  return [this](TimeNs t) {
    bins_.add(t, static_cast<std::size_t>(core::kPacketTypeCount));
  };
}

ErrorSampler::ErrorSampler(const net::Network& net,
                           const proto::FairShareProtocol& p)
    : net_(net), proto_(p) {}

void ErrorSampler::refresh_solution(
    const std::vector<core::SessionSpec>& specs) {
  std::size_t sig = specs.size() + 0x9e3779b97f4a7c15ULL;
  for (const auto& s : specs) {
    sig ^= std::hash<std::int64_t>{}(s.id.value()) + 0x9e3779b9 + (sig << 6) +
           (sig >> 2);
    sig ^= std::hash<double>{}(s.demand) + (sig << 6) + (sig >> 2);
  }
  if (sig == cached_sig_ && !specs.empty()) return;
  cached_sig_ = sig;
  solution_ = core::solve_waterfill(net_, specs);
  bottleneck_members_.clear();
  std::unordered_map<LinkId, std::vector<std::size_t>> members;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    for (const LinkId e : specs[i].path.links) {
      if (const auto it = solution_.links.find(e);
          it != solution_.links.end() && it->second.saturated) {
        members[e].push_back(i);
      }
    }
  }
  bottleneck_members_.assign(members.begin(), members.end());
  std::sort(bottleneck_members_.begin(), bottleneck_members_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

ErrorSampler::Sample ErrorSampler::sample(TimeNs t) {
  const auto specs = proto_.active_specs();
  refresh_solution(specs);

  Sample out;
  out.t = t;
  out.sessions = specs.size();
  std::vector<double> errors;
  std::vector<Rate> assigned(specs.size(), 0.0);
  errors.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    assigned[i] = proto_.current_rate(specs[i].id);
    const Rate x = solution_.rates[i];
    const double e = 100.0 * (assigned[i] - x) / x;
    errors.push_back(e);
    out.max_abs_error = std::max(out.max_abs_error, std::fabs(e));
  }
  out.source_error = stats::summarize(errors);

  std::vector<double> link_errors;
  link_errors.reserve(bottleneck_members_.size());
  for (const auto& [e, idxs] : bottleneck_members_) {
    double sa = 0, sx = 0;
    for (const std::size_t i : idxs) {
      sa += assigned[i];
      sx += solution_.rates[i];
    }
    if (sx > 0) link_errors.push_back(100.0 * (sa - sx) / sx);
  }
  out.link_error = stats::summarize(link_errors);
  return out;
}

PhasePlanner::PhasePlanner(const net::Network& net, Rng& rng)
    : net_(net),
      rng_(rng),
      paths_(net),
      used_sources_(static_cast<std::size_t>(net.host_count()), false) {}

PhasePlan PhasePlanner::plan_phase(const PhaseSpec& phase, TimeNs now) {
  PhasePlan plan;

  // Joins.  (Every rng draw below happens in the order the pre-planner
  // DynamicsRunner made it, interleaved scheduling and all — the
  // byte-identical figure output across engines depends on it.)
  WorkloadConfig wcfg;
  wcfg.sessions = phase.joins;
  wcfg.window_start = now;
  wcfg.join_window = phase.window;
  wcfg.demand_fraction = phase.demand_fraction;
  plan.joins =
      generate_sessions(net_, paths_, wcfg, rng_, used_sources_, next_id_);
  next_id_ += phase.joins;
  for (const auto& p : plan.joins) {
    active_.emplace(p.id.value(), p.source_host_index);
  }

  // Leaves and changes draw from sessions active *before* this phase.
  std::vector<std::int32_t> pool;
  for (const auto& [id, src] : active_) {
    if (id < next_id_ - phase.joins) pool.push_back(id);
  }
  std::sort(pool.begin(), pool.end());  // determinism across runs
  rng_.shuffle(pool);
  BNECK_EXPECT(static_cast<std::size_t>(phase.leaves + phase.changes) <=
                   pool.size() || phase.leaves + phase.changes == 0,
               "not enough established sessions for phase churn");

  std::size_t cursor = 0;
  for (std::int32_t k = 0; k < phase.leaves; ++k) {
    const std::int32_t id = pool[cursor++];
    const TimeNs when = now + rng_.uniform_int(0, phase.window - 1);
    plan.leaves.push_back({id, when});
    used_sources_[static_cast<std::size_t>(active_.at(id))] = false;
    active_.erase(id);
  }
  for (std::int32_t k = 0; k < phase.changes; ++k) {
    const std::int32_t id = pool[cursor++];
    const Rate demand = rng_.uniform_real(1.0, 100.0);
    const TimeNs when = now + rng_.uniform_int(0, phase.window - 1);
    plan.changes.push_back({id, demand, when});
  }
  return plan;
}

DynamicsRunner::DynamicsRunner(const net::Network& net, Rng& rng,
                               core::BneckConfig config, TimeNs bin_width)
    : net_(net),
      binner_(bin_width),
      driver_(sim_, net, config, &binner_),
      planner_(net, rng) {}

PhaseResult DynamicsRunner::run_phase(const PhaseSpec& phase) {
  PhaseResult result;
  result.started_at = sim_.now();
  const std::uint64_t packets_before = driver_.packets_sent();

  const PhasePlan plan = planner_.plan_phase(phase, sim_.now());
  schedule_joins(sim_, driver_, plan.joins);
  for (const auto& l : plan.leaves) {
    sim_.schedule_at(l.when,
                     [this, id = l.id] { driver_.leave(SessionId{id}); });
  }
  for (const auto& c : plan.changes) {
    sim_.schedule_at(c.when, [this, id = c.id, demand = c.demand] {
      driver_.change(SessionId{id}, demand);
    });
  }

  result.quiescent_at = sim_.run_until_idle();
  result.packets = driver_.packets_sent() - packets_before;
  result.active_sessions = driver_.protocol().active_sessions();
  return result;
}

double DynamicsRunner::max_rate_error() const {
  const auto specs = driver_.active_specs();
  const auto sol = core::solve_waterfill(net_, specs);
  double worst = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const Rate a = driver_.current_rate(specs[i].id);
    worst = std::max(worst, std::fabs(a - sol.rates[i]) /
                                std::max(1.0, sol.rates[i]));
  }
  return worst;
}

namespace {

std::vector<std::unique_ptr<PacketBinner>> make_shard_binners(
    std::int32_t shards, TimeNs bin_width) {
  std::vector<std::unique_ptr<PacketBinner>> binners;
  binners.reserve(static_cast<std::size_t>(shards));
  for (std::int32_t k = 0; k < shards; ++k) {
    binners.push_back(std::make_unique<PacketBinner>(bin_width));
  }
  return binners;
}

std::vector<core::TraceSink*> binner_sinks(
    const std::vector<std::unique_ptr<PacketBinner>>& binners) {
  std::vector<core::TraceSink*> sinks;
  sinks.reserve(binners.size());
  for (const auto& b : binners) sinks.push_back(b.get());
  return sinks;
}

}  // namespace

ShardedDynamicsRunner::ShardedDynamicsRunner(const net::Network& net,
                                             Rng& rng,
                                             core::ShardedConfig config,
                                             TimeNs bin_width)
    : net_(net),
      bin_width_(bin_width),
      // The effective shard count is what the partitioner will settle
      // on: capped by the router count, at least 1.
      binners_(make_shard_binners(
          std::max<std::int32_t>(
              1, std::min(config.shards, net.router_count())),
          bin_width)),
      engine_(std::make_unique<core::ShardedBneck>(net, config,
                                                   binner_sinks(binners_))),
      planner_(net, rng) {
  BNECK_EXPECT(static_cast<std::size_t>(engine_->shard_count()) ==
                   binners_.size(),
               "shard count drifted from the partitioner");
}

PhaseResult ShardedDynamicsRunner::run_phase(const PhaseSpec& phase) {
  PhaseResult result;
  result.started_at = engine_->now();
  const std::uint64_t packets_before = engine_->packets_sent();

  const PhasePlan plan = planner_.plan_phase(phase, engine_->now());
  for (const auto& p : plan.joins) {
    engine_->schedule_join(p.join_at, p.id, p.path, p.demand, p.weight);
  }
  for (const auto& l : plan.leaves) {
    engine_->schedule_leave(l.when, SessionId{l.id});
  }
  for (const auto& c : plan.changes) {
    engine_->schedule_change(c.when, SessionId{c.id}, c.demand);
  }

  result.quiescent_at = engine_->run_until_idle();
  result.packets = engine_->packets_sent() - packets_before;
  result.active_sessions = engine_->active_sessions();
  return result;
}

double ShardedDynamicsRunner::max_rate_error() const {
  const auto specs = engine_->active_specs();
  const auto sol = core::solve_waterfill(net_, specs);
  double worst = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const Rate a = engine_->notified_rate(specs[i].id).value_or(0.0);
    worst = std::max(worst, std::fabs(a - sol.rates[i]) /
                                std::max(1.0, sol.rates[i]));
  }
  return worst;
}

stats::BinnedCounter ShardedDynamicsRunner::bins() const {
  stats::BinnedCounter merged(bin_width_, packet_categories());
  for (const auto& binner : binners_) {
    const stats::BinnedCounter& b = binner->bins();
    for (std::size_t bin = 0; bin < b.bin_count(); ++bin) {
      for (std::size_t c = 0; c < b.category_count(); ++c) {
        const std::uint64_t n = b.at(bin, c);
        if (n > 0) merged.add(b.bin_start(bin), c, n);
      }
    }
  }
  return merged;
}

TrackedResult run_tracked(sim::Simulator& sim,
                          proto::FairShareProtocol& protocol,
                          const net::Network& net, const TrackedConfig& cfg) {
  TrackedResult result;
  ErrorSampler sampler(net, protocol);
  for (TimeNs t = cfg.sample_interval; t <= cfg.horizon;
       t += cfg.sample_interval) {
    sim.run_until(t);
    auto s = sampler.sample(t);
    if (!result.converged_at.has_value() && s.sessions > 0 &&
        s.max_abs_error <= cfg.tolerance_percent) {
      result.converged_at = t;
    }
    result.samples.push_back(std::move(s));
  }
  result.total_packets = protocol.packets_sent();
  return result;
}

void schedule_leaves(sim::Simulator& sim, proto::FairShareProtocol& protocol,
                     const std::vector<SessionPlan>& plans,
                     std::size_t first_index, std::size_t count,
                     TimeNs window_end, Rng& rng) {
  BNECK_EXPECT(first_index + count <= plans.size(), "leave range overflow");
  for (std::size_t k = first_index; k < first_index + count; ++k) {
    const SessionPlan& plan = plans[k];
    BNECK_EXPECT(plan.join_at + 1 < window_end,
                 "leave window ends before join");
    const TimeNs when = rng.uniform_int(plan.join_at + 1, window_end - 1);
    const SessionId id = plan.id;
    sim.schedule_at(when, [&protocol, id] { protocol.leave(id); });
  }
}

}  // namespace bneck::workload
