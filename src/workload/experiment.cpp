#include "workload/experiment.hpp"

#include <algorithm>
#include <cmath>

namespace bneck::workload {

namespace {

std::vector<std::string> packet_categories() {
  std::vector<std::string> cats;
  for (int t = 0; t < core::kPacketTypeCount; ++t) {
    cats.emplace_back(
        core::packet_type_name(static_cast<core::PacketType>(t)));
  }
  cats.emplace_back("Cell");
  return cats;
}

}  // namespace

PacketBinner::PacketBinner(TimeNs bin_width)
    : bins_(bin_width, packet_categories()) {}

void PacketBinner::on_packet_sent(TimeNs t, const core::Packet& p, LinkId) {
  bins_.add(t, static_cast<std::size_t>(p.type));
}

std::function<void(TimeNs)> PacketBinner::listener() {
  return [this](TimeNs t) {
    bins_.add(t, static_cast<std::size_t>(core::kPacketTypeCount));
  };
}

ErrorSampler::ErrorSampler(const net::Network& net,
                           const proto::FairShareProtocol& p)
    : net_(net), proto_(p) {}

void ErrorSampler::refresh_solution(
    const std::vector<core::SessionSpec>& specs) {
  std::size_t sig = specs.size() + 0x9e3779b97f4a7c15ULL;
  for (const auto& s : specs) {
    sig ^= std::hash<std::int64_t>{}(s.id.value()) + 0x9e3779b9 + (sig << 6) +
           (sig >> 2);
    sig ^= std::hash<double>{}(s.demand) + (sig << 6) + (sig >> 2);
  }
  if (sig == cached_sig_ && !specs.empty()) return;
  cached_sig_ = sig;
  solution_ = core::solve_waterfill(net_, specs);
  bottleneck_members_.clear();
  std::unordered_map<LinkId, std::vector<std::size_t>> members;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    for (const LinkId e : specs[i].path.links) {
      if (const auto it = solution_.links.find(e);
          it != solution_.links.end() && it->second.saturated) {
        members[e].push_back(i);
      }
    }
  }
  bottleneck_members_.assign(members.begin(), members.end());
  std::sort(bottleneck_members_.begin(), bottleneck_members_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

ErrorSampler::Sample ErrorSampler::sample(TimeNs t) {
  const auto specs = proto_.active_specs();
  refresh_solution(specs);

  Sample out;
  out.t = t;
  out.sessions = specs.size();
  std::vector<double> errors;
  std::vector<Rate> assigned(specs.size(), 0.0);
  errors.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    assigned[i] = proto_.current_rate(specs[i].id);
    const Rate x = solution_.rates[i];
    const double e = 100.0 * (assigned[i] - x) / x;
    errors.push_back(e);
    out.max_abs_error = std::max(out.max_abs_error, std::fabs(e));
  }
  out.source_error = stats::summarize(errors);

  std::vector<double> link_errors;
  link_errors.reserve(bottleneck_members_.size());
  for (const auto& [e, idxs] : bottleneck_members_) {
    double sa = 0, sx = 0;
    for (const std::size_t i : idxs) {
      sa += assigned[i];
      sx += solution_.rates[i];
    }
    if (sx > 0) link_errors.push_back(100.0 * (sa - sx) / sx);
  }
  out.link_error = stats::summarize(link_errors);
  return out;
}

DynamicsRunner::DynamicsRunner(const net::Network& net, Rng& rng,
                               core::BneckConfig config, TimeNs bin_width)
    : net_(net),
      rng_(rng),
      paths_(net),
      binner_(bin_width),
      driver_(sim_, net, config, &binner_),
      used_sources_(static_cast<std::size_t>(net.host_count()), false) {}

PhaseResult DynamicsRunner::run_phase(const PhaseSpec& phase) {
  PhaseResult result;
  result.started_at = sim_.now();
  const std::uint64_t packets_before = driver_.packets_sent();

  // Joins.
  WorkloadConfig wcfg;
  wcfg.sessions = phase.joins;
  wcfg.window_start = sim_.now();
  wcfg.join_window = phase.window;
  wcfg.demand_fraction = phase.demand_fraction;
  const auto plans =
      generate_sessions(net_, paths_, wcfg, rng_, used_sources_, next_id_);
  next_id_ += phase.joins;
  for (const auto& plan : plans) {
    active_.emplace(plan.id.value(), plan.source_host_index);
  }
  schedule_joins(sim_, driver_, plans);

  // Leaves and changes draw from sessions active *before* this phase.
  std::vector<std::int32_t> pool;
  for (const auto& [id, src] : active_) {
    if (id < next_id_ - phase.joins) pool.push_back(id);
  }
  std::sort(pool.begin(), pool.end());  // determinism across runs
  rng_.shuffle(pool);
  BNECK_EXPECT(static_cast<std::size_t>(phase.leaves + phase.changes) <=
                   pool.size() || phase.leaves + phase.changes == 0,
               "not enough established sessions for phase churn");

  std::size_t cursor = 0;
  for (std::int32_t k = 0; k < phase.leaves; ++k) {
    const std::int32_t id = pool[cursor++];
    const TimeNs when = sim_.now() + rng_.uniform_int(0, phase.window - 1);
    sim_.schedule_at(when, [this, id] { driver_.leave(SessionId{id}); });
    used_sources_[static_cast<std::size_t>(active_.at(id))] = false;
    active_.erase(id);
  }
  for (std::int32_t k = 0; k < phase.changes; ++k) {
    const std::int32_t id = pool[cursor++];
    const Rate demand = rng_.uniform_real(1.0, 100.0);
    const TimeNs when = sim_.now() + rng_.uniform_int(0, phase.window - 1);
    sim_.schedule_at(when,
                     [this, id, demand] { driver_.change(SessionId{id}, demand); });
  }

  result.quiescent_at = sim_.run_until_idle();
  result.packets = driver_.packets_sent() - packets_before;
  result.active_sessions = active_.size();
  return result;
}

double DynamicsRunner::max_rate_error() const {
  const auto specs = driver_.active_specs();
  const auto sol = core::solve_waterfill(net_, specs);
  double worst = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const Rate a = driver_.current_rate(specs[i].id);
    worst = std::max(worst, std::fabs(a - sol.rates[i]) /
                                std::max(1.0, sol.rates[i]));
  }
  return worst;
}

TrackedResult run_tracked(sim::Simulator& sim,
                          proto::FairShareProtocol& protocol,
                          const net::Network& net, const TrackedConfig& cfg) {
  TrackedResult result;
  ErrorSampler sampler(net, protocol);
  for (TimeNs t = cfg.sample_interval; t <= cfg.horizon;
       t += cfg.sample_interval) {
    sim.run_until(t);
    auto s = sampler.sample(t);
    if (!result.converged_at.has_value() && s.sessions > 0 &&
        s.max_abs_error <= cfg.tolerance_percent) {
      result.converged_at = t;
    }
    result.samples.push_back(std::move(s));
  }
  result.total_packets = protocol.packets_sent();
  return result;
}

void schedule_leaves(sim::Simulator& sim, proto::FairShareProtocol& protocol,
                     const std::vector<SessionPlan>& plans,
                     std::size_t first_index, std::size_t count,
                     TimeNs window_end, Rng& rng) {
  BNECK_EXPECT(first_index + count <= plans.size(), "leave range overflow");
  for (std::size_t k = first_index; k < first_index + count; ++k) {
    const SessionPlan& plan = plans[k];
    BNECK_EXPECT(plan.join_at + 1 < window_end,
                 "leave window ends before join");
    const TimeNs when = rng.uniform_int(plan.join_at + 1, window_end - 1);
    const SessionId id = plan.id;
    sim.schedule_at(when, [&protocol, id] { protocol.leave(id); });
  }
}

}  // namespace bneck::workload
