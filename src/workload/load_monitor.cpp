#include "workload/load_monitor.hpp"

#include <algorithm>

#include "base/expect.hpp"

namespace bneck::workload {

LinkLoadMonitor::LinkLoadMonitor(const net::Network& net)
    : net_(net), links_(static_cast<std::size_t>(net.link_count())) {}

void LinkLoadMonitor::register_session(SessionId s, const net::Path& path) {
  const bool inserted = sessions_.try_emplace(s, path, 0.0).second;
  BNECK_EXPECT(inserted, "session already registered");
}

void LinkLoadMonitor::apply(LinkId e, Rate delta, TimeNs t) {
  State& st = links_[static_cast<std::size_t>(e.value())];
  BNECK_EXPECT(t >= st.last_change, "time went backwards");
  const Rate capacity = net_.link(e).capacity;
  if (st.current > capacity * (1 + 1e-9)) {
    st.overloaded_for += t - st.last_change;
  }
  st.last_change = t;
  st.current += delta;
  if (st.current < 0 && st.current > -1e-9) st.current = 0;  // rounding
  BNECK_EXPECT(st.current >= 0, "negative link load");
  st.peak = std::max(st.peak, st.current);
  st.touched = true;
}

void LinkLoadMonitor::set_rate(SessionId s, Rate rate, TimeNs t) {
  const auto it = sessions_.find(s);
  BNECK_EXPECT(it != sessions_.end(), "set_rate for unregistered session");
  BNECK_EXPECT(rate >= 0, "negative rate");
  const Rate delta = rate - it->second.second;
  if (delta == 0) return;
  it->second.second = rate;
  for (const LinkId e : it->second.first.links) {
    apply(e, delta, t);
  }
}

void LinkLoadMonitor::finalize(TimeNs t) {
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (!links_[i].touched) continue;
    apply(LinkId{static_cast<std::int32_t>(i)}, 0.0, t);
  }
}

LinkLoadMonitor::LinkLoad LinkLoadMonitor::load(LinkId e) const {
  const State& st = links_[static_cast<std::size_t>(e.value())];
  return LinkLoad{net_.link(e).capacity, st.current, st.peak,
                  st.overloaded_for};
}

double LinkLoadMonitor::max_utilization() const {
  double worst = 0;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (!links_[i].touched) continue;
    const Rate cap = net_.link(LinkId{static_cast<std::int32_t>(i)}).capacity;
    worst = std::max(worst, links_[i].peak / cap);
  }
  return worst;
}

TimeNs LinkLoadMonitor::worst_overload() const {
  TimeNs worst = 0;
  for (const State& st : links_) {
    worst = std::max(worst, st.overloaded_for);
  }
  return worst;
}

std::vector<LinkId> LinkLoadMonitor::overloaded_links() const {
  std::vector<LinkId> out;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const LinkId e{static_cast<std::int32_t>(i)};
    if (links_[i].touched &&
        links_[i].peak > net_.link(e).capacity * (1 + 1e-9)) {
      out.push_back(e);
    }
  }
  return out;
}

}  // namespace bneck::workload
