// Console table / CSV rendering for the benchmark harness.
//
// Every bench binary prints the rows/series of one paper figure; Table
// keeps the formatting in one place (fixed-width console layout plus a
// machine-readable CSV dump).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace bneck::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Formats a double with the given precision (trailing zeros kept).
  static std::string num(double v, int precision = 2);
  static std::string integer(std::int64_t v);

  /// Fixed-width, right-aligned console rendering.
  void print(std::ostream& os) const;

  /// Comma-separated dump (no quoting; cells must not contain commas).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bneck::stats
