#include "stats/time_series.hpp"

namespace bneck::stats {

BinnedCounter::BinnedCounter(TimeNs bin_width,
                             std::vector<std::string> categories)
    : bin_width_(bin_width), categories_(std::move(categories)) {
  BNECK_EXPECT(bin_width_ > 0, "bin width must be positive");
  BNECK_EXPECT(!categories_.empty(), "need at least one category");
}

void BinnedCounter::add(TimeNs t, std::size_t category, std::uint64_t n) {
  BNECK_EXPECT(t >= 0, "negative timestamp");
  BNECK_EXPECT(category < categories_.size(), "bad category");
  const auto bin = static_cast<std::size_t>(t / bin_width_);
  if (bin >= bins_.size()) {
    bins_.resize(bin + 1, std::vector<std::uint64_t>(categories_.size(), 0));
  }
  bins_[bin][category] += n;
}

std::uint64_t BinnedCounter::at(std::size_t bin, std::size_t category) const {
  BNECK_EXPECT(category < categories_.size(), "bad category");
  if (bin >= bins_.size()) return 0;
  return bins_[bin][category];
}

std::uint64_t BinnedCounter::bin_total(std::size_t bin) const {
  if (bin >= bins_.size()) return 0;
  std::uint64_t sum = 0;
  for (const auto c : bins_[bin]) sum += c;
  return sum;
}

std::uint64_t BinnedCounter::category_total(std::size_t category) const {
  BNECK_EXPECT(category < categories_.size(), "bad category");
  std::uint64_t sum = 0;
  for (const auto& bin : bins_) sum += bin[category];
  return sum;
}

std::uint64_t BinnedCounter::total() const {
  std::uint64_t sum = 0;
  for (std::size_t b = 0; b < bins_.size(); ++b) sum += bin_total(b);
  return sum;
}

}  // namespace bneck::stats
