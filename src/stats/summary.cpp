#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "base/expect.hpp"

namespace bneck::stats {

namespace {

// Percentile of an already-sorted sample, linear interpolation.
double sorted_percentile(const std::vector<double>& s, double q) {
  BNECK_EXPECT(!s.empty(), "percentile of empty sample");
  BNECK_EXPECT(q >= 0.0 && q <= 1.0, "percentile out of [0,1]");
  if (s.size() == 1) return s[0];
  const double pos = q * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - std::floor(pos);
  return s[lo] + (s[hi] - s[lo]) * frac;
}

}  // namespace

double percentile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  return sorted_percentile(samples, q);
}

Summary summarize(std::vector<double> samples) {
  Summary out;
  out.count = samples.size();
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  double sum = 0;
  for (const double x : samples) sum += x;
  out.mean = sum / static_cast<double>(samples.size());
  out.min = samples.front();
  out.max = samples.back();
  out.p10 = sorted_percentile(samples, 0.10);
  out.p50 = sorted_percentile(samples, 0.50);
  out.p90 = sorted_percentile(samples, 0.90);
  return out;
}

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++n_;
}

}  // namespace bneck::stats
