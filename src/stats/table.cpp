#include "stats/table.hpp"

#include <algorithm>
#include <cstdio>

#include "base/expect.hpp"

namespace bneck::stats {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  BNECK_EXPECT(!headers_.empty(), "table needs headers");
}

Table& Table::add_row(std::vector<std::string> cells) {
  BNECK_EXPECT(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::integer(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "");
      os.width(static_cast<std::streamsize>(width[c]));
      os << row[c];
    }
    os << '\n';
  };
  os << std::right;
  print_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < width.size(); ++c) {
    rule += std::string(width[c], '-') + (c + 1 < width.size() ? "  " : "");
  }
  os << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "," : "") << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace bneck::stats
