// Summary statistics: percentiles, mean, min/max.
//
// Used for the paper's Figure 7 series (10th/90th percentile, median and
// average of per-session relative rate error) and general reporting.
#pragma once

#include <cstddef>
#include <vector>

namespace bneck::stats {

/// Point summary of a sample set.
struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double min = 0;
  double max = 0;
  double p10 = 0;
  double p50 = 0;
  double p90 = 0;
};

/// Percentile with linear interpolation between closest ranks
/// (the "exclusive" definition used by gnuplot/numpy default).
/// q in [0,1].  Requires a non-empty sample.
double percentile(std::vector<double> samples, double q);

/// Computes all Summary fields in one pass (sorts a copy once).
Summary summarize(std::vector<double> samples);

/// Online accumulator when samples are not retained.
class Accumulator {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace bneck::stats
