// Binned time series.
//
// The paper's Figures 6 and 8 aggregate packet counts into fixed-width
// time bins (5 ms and 3 ms respectively).  BinnedCounter counts events per
// bin per category (packet type, protocol name, ...).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/expect.hpp"
#include "base/time.hpp"

namespace bneck::stats {

class BinnedCounter {
 public:
  /// categories: fixed set of row labels (e.g. packet type names).
  BinnedCounter(TimeNs bin_width, std::vector<std::string> categories);

  void add(TimeNs t, std::size_t category, std::uint64_t n = 1);

  [[nodiscard]] TimeNs bin_width() const { return bin_width_; }
  [[nodiscard]] std::size_t bin_count() const { return bins_.size(); }
  [[nodiscard]] std::size_t category_count() const { return categories_.size(); }
  [[nodiscard]] const std::vector<std::string>& categories() const {
    return categories_;
  }

  /// Count in a bin for a category (0 for bins never touched).
  [[nodiscard]] std::uint64_t at(std::size_t bin, std::size_t category) const;

  /// Sum over all categories in a bin.
  [[nodiscard]] std::uint64_t bin_total(std::size_t bin) const;

  /// Sum over all bins for a category.
  [[nodiscard]] std::uint64_t category_total(std::size_t category) const;

  /// Grand total.
  [[nodiscard]] std::uint64_t total() const;

  /// Start time of a bin.
  [[nodiscard]] TimeNs bin_start(std::size_t bin) const {
    return static_cast<TimeNs>(bin) * bin_width_;
  }

 private:
  TimeNs bin_width_;
  std::vector<std::string> categories_;
  std::vector<std::vector<std::uint64_t>> bins_;  // bins_[bin][category]
};

}  // namespace bneck::stats
